package serve

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"rnrsim/internal/telemetry"
)

// WriteMetrics renders the given registries in Prometheus text exposition
// format (version 0.0.4). Later registries shadow earlier ones on name
// collision, so passing (manager registry, telemetry.Default) gives the
// manager's instruments priority when both are the same registry anyway.
//
// Counters keep their monotonic semantics (`# TYPE ... counter`); gauges
// and probes are both exposed as `gauge`; histograms render as native
// Prometheus histograms (cumulative `_bucket{le=...}` series plus `_sum`
// and `_count`). Names are sanitised to the Prometheus grammar: every
// byte outside [a-zA-Z0-9_:] becomes '_' (so "rnrd.queue_depth" exposes
// as "rnrd_queue_depth").
func WriteMetrics(w io.Writer, cycle uint64, regs ...*telemetry.Registry) error {
	type row struct {
		kind  string
		value float64
	}
	merged := make(map[string]row)
	hists := make(map[string]*telemetry.Histogram)
	seen := make(map[*telemetry.Registry]bool)
	for _, r := range regs {
		if r == nil || seen[r] {
			continue
		}
		seen[r] = true
		for _, m := range r.Snapshot(cycle) {
			merged[sanitizeMetricName(m.Name)] = row{kind: m.Kind, value: m.Value}
		}
		for _, nh := range r.Histograms() {
			hists[sanitizeMetricName(nh.Name)] = nh.H
		}
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := merged[n]
		typ := "gauge"
		if m.kind == "counter" {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", n, typ, n, formatMetricValue(m.value)); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(hists))
	for n := range hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		if err := writeHistogram(w, n, hists[n]); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram in the native Prometheus shape:
// cumulative buckets at each non-empty exponential boundary, a
// mandatory +Inf bucket, then _sum and _count. Empty buckets are
// elided (cumulative series stay correct without them); the top
// bucket's 2^64-1 boundary folds into +Inf.
func writeHistogram(w io.Writer, name string, h *telemetry.Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i := 0; i < telemetry.HistogramBuckets-1; i++ {
		n := h.Bucket(i)
		if n == 0 {
			continue
		}
		cum += n
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n",
			name, telemetry.HistogramBucketBound(i), cum); err != nil {
			return err
		}
	}
	count := h.Count()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, count); err != nil {
		return err
	}
	return nil
}

// sanitizeMetricName maps a registry name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// formatMetricValue renders a float the way Prometheus expects: integral
// values without an exponent or trailing zeros.
func formatMetricValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
