package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Event types on a job's SSE stream.
const (
	// EventState marks a lifecycle transition (queued, running, done,
	// failed, canceled). Terminal states end the stream.
	EventState = "state"
	// EventPhase is a live progress tick from inside the simulator: one
	// per iteration-barrier opening, labelled with the run key (an
	// experiment job interleaves ticks from many keys).
	EventPhase = "phase"
)

// Event is one frame on a job's event stream. Seq is assigned by the
// log, strictly increasing per job, and doubles as the SSE `id:` field
// so clients can detect gaps.
type Event struct {
	Seq   int       `json:"seq"`
	Type  string    `json:"type"`
	State JobState  `json:"state,omitempty"`
	Error string    `json:"error,omitempty"`
	Phase *PhaseRef `json:"phase,omitempty"`
}

// PhaseRef locates a progress tick: which memoised run it came from and
// where that simulation is.
type PhaseRef struct {
	Key       string `json:"key"`
	Iteration int    `json:"iteration"`
	Cycle     uint64 `json:"cycle"`
}

// WriteSSE renders the event as one server-sent-events frame.
func (e Event) WriteSSE(w io.Writer) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

// maxRetainedEvents bounds a job's event history. State events are
// five per lifetime; phase ticks dominate, one per simulated
// iteration, so the bound only matters for pathological workloads.
// When it is hit the oldest events are dropped — subscribers see the
// gap in Seq.
const maxRetainedEvents = 4096

// subscriberBuffer is the per-subscriber channel depth. A subscriber
// that falls further behind than this has events dropped (never the
// terminal state event: closeLog is ordered after the final publish,
// and the channel close itself signals termination).
const subscriberBuffer = 1024

// eventLog is a per-job append-only event history with fan-out: late
// subscribers replay the retained history, then follow live.
type eventLog struct {
	mu     sync.Mutex
	next   int // next Seq
	events []Event
	subs   map[chan Event]struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{subs: make(map[chan Event]struct{})}
}

// publish stamps the event with the next sequence number, retains it
// and fans it out. Slow subscribers lose the event rather than block
// the simulation goroutine publishing it.
func (l *eventLog) publish(ev Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	ev.Seq = l.next
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > maxRetainedEvents {
		l.events = l.events[len(l.events)-maxRetainedEvents:]
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than block
		}
	}
}

// closeLog ends the stream: every subscriber channel is closed after
// the events already queued drain. Publishing after closeLog is a
// no-op.
func (l *eventLog) closeLog() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = nil
}

// subscribe returns the retained history and a live channel (nil when
// the log is already closed — the history is complete). cancel must be
// called when the subscriber goes away; it is safe to call after
// closeLog.
func (l *eventLog) subscribe() (history []Event, live <-chan Event, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	history = append([]Event(nil), l.events...)
	if l.closed {
		return history, nil, func() {}
	}
	ch := make(chan Event, subscriberBuffer)
	l.subs[ch] = struct{}{}
	return history, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
}
