package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
)

// Event types on a job's SSE stream.
const (
	// EventState marks a lifecycle transition (queued, running, done,
	// failed, canceled). Terminal states end the stream.
	EventState = "state"
	// EventPhase is a live progress tick from inside the simulator: one
	// per iteration-barrier opening, labelled with the run key (an
	// experiment job interleaves ticks from many keys).
	EventPhase = "phase"
)

// Event is one frame on an event stream. Seq is assigned by the log,
// strictly increasing per stream, and doubles as the SSE `id:` field so
// clients can detect gaps and resume with Last-Event-ID.
type Event struct {
	Seq   int       `json:"seq"`
	Type  string    `json:"type"`
	State JobState  `json:"state,omitempty"`
	Error string    `json:"error,omitempty"`
	Phase *PhaseRef `json:"phase,omitempty"`
	// Data carries layered payloads the serve job vocabulary does not
	// model (e.g. the cluster coordinator's aggregate sweep progress).
	Data json.RawMessage `json:"data,omitempty"`
}

// PhaseRef locates a progress tick: which memoised run it came from and
// where that simulation is.
type PhaseRef struct {
	Key       string `json:"key"`
	Iteration int    `json:"iteration"`
	Cycle     uint64 `json:"cycle"`
}

// WriteSSE renders the event as one server-sent-events frame.
func (e Event) WriteSSE(w io.Writer) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	return err
}

// maxRetainedEvents bounds a stream's event history. State events are
// five per lifetime; phase ticks dominate, one per simulated
// iteration, so the bound only matters for pathological workloads.
// When it is hit the oldest events are dropped — subscribers see the
// gap in Seq.
const maxRetainedEvents = 4096

// subscriberBuffer is the per-subscriber channel depth. A subscriber
// that falls further behind than this has events dropped (never the
// terminal state event: Close is ordered after the final publish,
// and the channel close itself signals termination).
const subscriberBuffer = 1024

// EventLog is an append-only event history with fan-out: late
// subscribers replay the retained history, then follow live. Jobs and
// the cluster layer's aggregate sweep streams both publish through it.
type EventLog struct {
	mu     sync.Mutex
	next   int // next Seq
	events []Event
	subs   map[chan Event]struct{}
	closed bool
}

// NewEventLog returns an empty open log.
func NewEventLog() *EventLog {
	return &EventLog{subs: make(map[chan Event]struct{})}
}

// Publish stamps the event with the next sequence number, retains it
// and fans it out. Slow subscribers lose the event rather than block
// the goroutine publishing it. It returns the assigned sequence number
// (-1 once the log is closed).
func (l *EventLog) Publish(ev Event) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return -1
	}
	ev.Seq = l.next
	l.next++
	l.events = append(l.events, ev)
	if len(l.events) > maxRetainedEvents {
		l.events = l.events[len(l.events)-maxRetainedEvents:]
	}
	for ch := range l.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop rather than block
		}
	}
	return ev.Seq
}

// Close ends the stream: every subscriber channel is closed after
// the events already queued drain. Publishing after Close is a no-op.
func (l *EventLog) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = nil
}

// Subscribe returns the full retained history and a live channel (nil
// when the log is already closed — the history is complete). cancel
// must be called when the subscriber goes away; it is safe to call
// after Close.
func (l *EventLog) Subscribe() (history []Event, live <-chan Event, cancel func()) {
	return l.SubscribeFrom(-1)
}

// SubscribeFrom is Subscribe with resume semantics: only retained
// events with Seq > after are replayed, so a client reconnecting with
// Last-Event-ID sees exactly the events it missed rather than the full
// history. after < 0 replays everything.
func (l *EventLog) SubscribeFrom(after int) (history []Event, live <-chan Event, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ev := range l.events {
		if ev.Seq > after {
			history = append(history, ev)
		}
	}
	if l.closed {
		return history, nil, func() {}
	}
	ch := make(chan Event, subscriberBuffer)
	l.subs[ch] = struct{}{}
	return history, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, ok := l.subs[ch]; ok {
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// lastEventID extracts the SSE resume cursor from a request: the
// standard Last-Event-ID header set by EventSource reconnects, with a
// last_event_id query parameter fallback for clients (curl, test
// harnesses) that cannot set headers. Returns -1 (replay everything)
// when absent or malformed.
func lastEventID(r *http.Request) int {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("last_event_id")
	}
	if raw == "" {
		return -1
	}
	id, err := strconv.Atoi(raw)
	if err != nil || id < 0 {
		return -1
	}
	return id
}

// StreamSSE serves an EventLog over one SSE response: missed-history
// replay first (honouring Last-Event-ID), then live events until the
// log closes or the client disconnects. Both the job event streams and
// the cluster sweep aggregate stream are served through this path.
func StreamSSE(w http.ResponseWriter, r *http.Request, l *EventLog) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	history, live, cancel := l.SubscribeFrom(lastEventID(r))
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	for _, ev := range history {
		if ev.WriteSSE(w) != nil {
			return
		}
	}
	flusher.Flush()
	if live == nil { // already terminal: history is complete
		return
	}
	for {
		select {
		case ev, ok := <-live:
			if !ok { // log closed: terminal event already delivered
				return
			}
			if ev.WriteSSE(w) != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}
