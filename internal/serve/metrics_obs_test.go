package serve

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"rnrsim/internal/obs"
	"rnrsim/internal/telemetry"
)

// TestWriteMetricsHistogram pins the native Prometheus histogram shape:
// cumulative buckets at the exponential boundaries, a +Inf bucket, sum
// and count, with the registry name sanitised.
func TestWriteMetricsHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("obs.fill_latency_cycles")
	for _, v := range []uint64{0, 1, 3, 1000} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := WriteMetrics(&b, 0, reg); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE obs_fill_latency_cycles histogram
obs_fill_latency_cycles_bucket{le="0"} 1
obs_fill_latency_cycles_bucket{le="1"} 2
obs_fill_latency_cycles_bucket{le="3"} 3
obs_fill_latency_cycles_bucket{le="1023"} 4
obs_fill_latency_cycles_bucket{le="+Inf"} 4
obs_fill_latency_cycles_sum 1004
obs_fill_latency_cycles_count 4
`
	if got := b.String(); got != want {
		t.Errorf("histogram exposition:\n got: %q\nwant: %q", got, want)
	}
}

// TestWriteMetricsHistogramEmpty: a registered-but-unfed histogram still
// exposes a well-formed series (the +Inf bucket is mandatory).
func TestWriteMetricsHistogramEmpty(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Histogram("obs.mshr_at_issue")
	var b strings.Builder
	if err := WriteMetrics(&b, 0, reg); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE obs_mshr_at_issue histogram
obs_mshr_at_issue_bucket{le="+Inf"} 0
obs_mshr_at_issue_sum 0
obs_mshr_at_issue_count 0
`
	if got := b.String(); got != want {
		t.Errorf("empty histogram exposition:\n got: %q\nwant: %q", got, want)
	}
}

// TestHTTPMetricsObsHistograms runs an observed RnR job through the
// daemon and checks (a) the served result carries the lifecycle
// section and (b) /metrics exposes the mirrored obs histograms.
func TestHTTPMetricsObsHistograms(t *testing.T) {
	reg := telemetry.NewRegistry()
	ts, _ := newTestServer(t, Options{Workers: 1, Registry: reg, Obs: &obs.Config{}})

	spec := testSpec()
	spec.Prefetcher = "rnr"
	resp := postJSON(t, ts.URL+"/v1/runs?wait=1", spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status = %d", resp.StatusCode)
	}
	v := decodeView(t, resp)
	if v.State != StateDone {
		t.Fatalf("job state = %q (err %q)", v.State, v.Error)
	}
	payload := string(v.Result)
	if !strings.Contains(payload, `"lifecycle"`) || !strings.Contains(payload, `"histograms"`) {
		t.Errorf("served result lacks the obs sections:\n%s", payload)
	}
	if !strings.Contains(payload, `"divergence"`) {
		t.Errorf("served RnR result lacks the divergence section:\n%s", payload)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	text := string(body)
	for _, want := range []string{
		"# TYPE obs_fill_latency_cycles histogram",
		`obs_fill_latency_cycles_bucket{le="+Inf"}`,
		"obs_fill_latency_cycles_count",
		"obs_prefetch_to_use_cycles_count",
		"obs_mshr_at_issue_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// The run issued real prefetches, so the mirrored counts are live.
	if strings.Contains(text, "obs_fill_latency_cycles_count 0\n") {
		t.Error("mirrored fill-latency histogram never saw a sample")
	}
}
