// Package dram models the main memory of the simulated machine: a single
// DDR4-2400 channel with 16 banks behind an FCFS memory controller with a
// 64-entry read queue and a 32-entry write queue drained by high/low
// watermarks (75%/25%), per Table II of the paper. The model captures the
// three effects the evaluation depends on: bank contention, data-bus
// contention (including read/write turnaround), and row-buffer locality
// (RnR metadata streams are sequential and therefore row-hit heavy).
package dram

import (
	"fmt"

	"rnrsim/internal/mem"
	"rnrsim/internal/telemetry"
)

// Config describes the memory system. All timing is expressed in CPU
// cycles; Default converts the paper's DDR4-2400 CL17 figures to a 4 GHz
// core clock.
type Config struct {
	Name        string
	Banks       int
	RowBytes    uint64 // row-buffer size per bank
	ReadQ       int
	WriteQ      int
	DrainHigh   float64 // write-drain start threshold (fraction of WriteQ)
	DrainLow    float64 // write-drain stop threshold
	TCAS        uint64  // column access (row hit) latency, CPU cycles
	TRCD        uint64  // activate latency
	TRP         uint64  // precharge latency
	BurstCycles uint64  // data-bus occupancy of one 64 B line
	Turnaround  uint64  // bus turnaround penalty on read<->write switch
	MaxInFlight int     // controller-side concurrency (scheduling slots per cycle)
	Channels    int     // independent channels (data buses); banks are per channel
}

// Default returns the paper's main-memory configuration scaled to a 4 GHz
// CPU clock: DDR4-2400 (1200 MHz bus), tCL = tRCD = tRP = 17 memory cycles
// ~= 57 CPU cycles, BL8 burst = 4 bus cycles ~= 13 CPU cycles.
func Default() Config {
	return Config{
		Name:        "DDR4-2400",
		Banks:       16,
		RowBytes:    8 * 1024,
		ReadQ:       64,
		WriteQ:      32,
		DrainHigh:   0.75,
		DrainLow:    0.25,
		TCAS:        57,
		TRCD:        57,
		TRP:         57,
		BurstCycles: 13,
		Turnaround:  15,
		MaxInFlight: 8,
		Channels:    1,
	}
}

func (c Config) validate() error {
	if c.Banks < 1 || c.RowBytes < mem.LineSize || c.ReadQ < 1 || c.WriteQ < 1 ||
		c.BurstCycles == 0 || c.MaxInFlight < 1 || c.Channels < 0 {
		return fmt.Errorf("dram %q: invalid config %+v", c.Name, c)
	}
	if c.DrainHigh <= c.DrainLow {
		return fmt.Errorf("dram %q: drain thresholds %v <= %v", c.Name, c.DrainHigh, c.DrainLow)
	}
	return nil
}

// Stats counts controller activity, split the way Fig. 12 needs it.
type Stats struct {
	Reads          uint64 // total read transactions (lines)
	Writes         uint64 // total write transactions (lines)
	DemandReads    uint64
	PrefetchReads  uint64
	MetaReads      uint64
	MetaWrites     uint64
	Writebacks     uint64
	RowHits        uint64
	RowMisses      uint64
	BusBusyCycles  uint64
	ReadQFullStall uint64 // enqueue rejections
}

// TotalTraffic returns total off-chip line transfers (reads + writes).
func (s Stats) TotalTraffic() uint64 { return s.Reads + s.Writes }

type bank struct {
	openRow   int64 // -1 when precharged
	readyAt   uint64
	rowOpened bool
}

type pending struct {
	req    *mem.Request
	finish uint64
}

// Controller is the memory controller plus DRAM device model. It
// implements mem.Backend.
type Controller struct {
	cfg       Config
	banks     []bank
	readQ     []*mem.Request
	writeQ    []*mem.Request
	inService []pending
	clock     uint64
	busFreeAt []uint64 // per channel
	lastWrite []bool   // per channel: direction of last transfer, for turnaround
	draining  bool
	burstLeft int  // writes remaining in the current drain burst
	wakeDirty bool // external enqueue arrived; see TakeWakeDirty
	// Power-of-two address-decode fast path (see New).
	fastAddr  bool
	drainHi   int // precomputed watermark: int(WriteQ*DrainHigh)
	drainLo   int // precomputed watermark: int(WriteQ*DrainLow)
	rowShift  uint
	chShift   uint
	chMask    uint64
	bankShift uint
	bankMask  uint64
	// doneReads counts read transactions whose data transfer finished;
	// the audit layer checks Stats.Reads == doneReads + len(inService)
	// (every issued read is either delivered or still on the bus).
	doneReads uint64
	Stats     Stats

	// Tel, when set, receives a span per write-drain episode (the
	// watermark-driven bursts that stall the read stream, one of the
	// paper's replay hazards). Nil disables tracing at zero cost.
	Tel        *telemetry.Recorder
	drainStart uint64
}

// New builds a controller. It panics on an invalid configuration.
func New(cfg Config) *Controller {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	c := &Controller{
		cfg:       cfg,
		banks:     make([]bank, cfg.Banks*cfg.Channels),
		busFreeAt: make([]uint64, cfg.Channels),
		lastWrite: make([]bool, cfg.Channels),
	}
	// Address decode runs on every scheduling scan; when the geometry is
	// all powers of two (every shipped config) the three divisions reduce
	// to shifts and masks.
	if isPow2(cfg.RowBytes) && isPow2(uint64(cfg.Channels)) && isPow2(uint64(cfg.Banks)) {
		c.fastAddr = true
		c.rowShift = log2(cfg.RowBytes)
		c.chShift = log2(uint64(cfg.Channels))
		c.chMask = uint64(cfg.Channels) - 1
		c.bankShift = log2(uint64(cfg.Banks))
		c.bankMask = uint64(cfg.Banks) - 1
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	c.drainHi = int(float64(cfg.WriteQ) * cfg.DrainHigh)
	c.drainLo = int(float64(cfg.WriteQ) * cfg.DrainLow)
	return c
}

// Config returns the controller's configuration.
func (c *Controller) Config() Config { return c.cfg }

// addressing: [row | bank | channel | column]; column covers one row
// buffer, lines interleave across channels at row granularity.
func (c *Controller) channelOf(line mem.Addr) int {
	if c.fastAddr {
		return int(uint64(line) >> c.rowShift & c.chMask)
	}
	return int(uint64(line) / c.cfg.RowBytes % uint64(c.cfg.Channels))
}

func (c *Controller) bankOf(line mem.Addr) int {
	if c.fastAddr {
		x := uint64(line) >> c.rowShift
		return int(x&c.chMask)*c.cfg.Banks + int(x>>c.chShift&c.bankMask)
	}
	ch := c.channelOf(line)
	b := int(uint64(line) / c.cfg.RowBytes / uint64(c.cfg.Channels) % uint64(c.cfg.Banks))
	return ch*c.cfg.Banks + b
}

func (c *Controller) rowOf(line mem.Addr) int64 {
	if c.fastAddr {
		return int64(uint64(line) >> c.rowShift >> c.chShift >> c.bankShift)
	}
	return int64(uint64(line) / c.cfg.RowBytes / uint64(c.cfg.Channels) / uint64(c.cfg.Banks))
}

func isPow2(v uint64) bool { return v != 0 && v&(v-1) == 0 }

func log2(v uint64) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// TryEnqueue accepts a request into the read or write queue. Writebacks and
// metadata writes are posted (completed immediately from the issuer's view)
// but still consume write bandwidth later.
func (c *Controller) TryEnqueue(r *mem.Request) bool {
	switch r.Type {
	case mem.ReqWriteback, mem.ReqMetaWrite:
		if len(c.writeQ) >= c.cfg.WriteQ {
			return false
		}
		c.writeQ = append(c.writeQ, r)
		c.wakeDirty = true
		r.Complete(c.clock) // posted write
		return true
	default:
		if len(c.readQ) >= c.cfg.ReadQ {
			c.Stats.ReadQFullStall++
			return false
		}
		c.readQ = append(c.readQ, r)
		c.wakeDirty = true
		return true
	}
}

// TakeWakeDirty reports and clears the external-input flag (set on
// every accepted enqueue). The event scheduler uses it to know when the
// controller's cached wakeup may have moved earlier.
func (c *Controller) TakeWakeDirty() bool {
	d := c.wakeDirty
	c.wakeDirty = false
	return d
}

// ReadQLen and WriteQLen expose occupancy for tests and adaptive clients.
func (c *Controller) ReadQLen() int { return len(c.readQ) }

// WriteQLen returns the current write-queue occupancy.
func (c *Controller) WriteQLen() int { return len(c.writeQ) }

// Pending returns outstanding work (queued plus in service).
func (c *Controller) Pending() int {
	return len(c.readQ) + len(c.writeQ) + len(c.inService)
}

// Tick advances the controller one CPU cycle: completes finished transfers
// and schedules new ones subject to bank and bus availability.
func (c *Controller) Tick(now uint64) {
	c.clock = now
	c.complete(now)
	c.updateDrainState()

	for slot := 0; slot < c.cfg.MaxInFlight; slot++ {
		if !c.scheduleOne(now) {
			break
		}
	}
	// Low-priority traffic (prefetch and metadata reads) is guaranteed one
	// issue opportunity per cycle on otherwise-idle banks, so a steady
	// demand stream cannot starve it outright — priority shapes latency,
	// not liveness.
	if len(c.inService) < c.cfg.MaxInFlight+1 {
		c.issueRead(now, false)
	}
}

// Wakeup reports the earliest future cycle at which Tick could change
// state, or mem.WakeupNever when fully quiescent. Two families of events
// matter: transfer completions (inService finish times) and issue
// opportunities (bank readyAt for queued requests). On top of those,
// drain-state transitions must be applied on the very next cycle:
// draining and burstLeft are architectural (hashed) state and the
// write-drain telemetry span stamps the flip cycle, so a pending flip —
// possible because fill callbacks can enqueue writebacks after this
// tick's updateDrainState ran — forces now+1.
func (c *Controller) Wakeup(now uint64) uint64 {
	if (!c.draining && len(c.writeQ) >= c.drainHi) || (c.draining && len(c.writeQ) <= c.drainLo) {
		return now + 1 // pending draining flip
	}
	if c.burstLeft == 0 && (len(c.writeQ) >= c.cfg.WriteQ || (c.draining && len(c.writeQ) > 0)) {
		return now + 1 // a write burst would start next tick
	}
	if c.burstLeft > 0 && len(c.writeQ) == 0 {
		return now + 1 // stale burst credit is cleared next tick
	}
	w := mem.WakeupNever
	for _, p := range c.inService {
		if p.finish < w {
			w = p.finish
		}
	}
	// Reads issue as soon as a bank is ready, provided a service slot is
	// free (slot exhaustion resolves at a finish time, already counted).
	if len(c.inService) <= c.cfg.MaxInFlight {
		for _, r := range c.readQ {
			if ra := c.banks[c.bankOf(r.Line)].readyAt; ra < w {
				w = ra
			}
		}
	}
	// Writes issue during a burst, or opportunistically when the read
	// queue is idle with enough writes banked (or the controller fully
	// idle). Outside those regimes a queued write cannot issue no matter
	// what its bank does, and the regime itself only changes at an event
	// we already track (read issue, completion, drain flip).
	if len(c.writeQ) > 0 &&
		(c.burstLeft > 0 ||
			(len(c.readQ) == 0 && (len(c.writeQ) >= writeBurstMin || len(c.inService) == 0))) {
		for _, r := range c.writeQ {
			if ra := c.banks[c.bankOf(r.Line)].readyAt; ra < w {
				w = ra
			}
		}
	}
	if w != mem.WakeupNever && w <= now {
		w = now + 1
	}
	return w
}

// AdvanceClock fast-forwards the internal clock over skipped idle
// cycles. The clock timestamps posted-write completions and the
// write-drain telemetry span, so before simulating cycle X after a jump
// it must read X-1, as a cycle-stepped run would have left it.
func (c *Controller) AdvanceClock(now uint64) { c.clock = now }

func (c *Controller) complete(now uint64) {
	kept := c.inService[:0]
	for _, p := range c.inService {
		if p.finish <= now {
			c.doneReads++
			p.req.Complete(now)
		} else {
			kept = append(kept, p)
		}
	}
	c.inService = kept
}

func (c *Controller) updateDrainState() {
	was := c.draining
	if len(c.writeQ) >= c.drainHi {
		c.draining = true
	} else if len(c.writeQ) <= c.drainLo {
		c.draining = false
	}
	if c.Tel != nil && c.draining != was {
		if c.draining {
			c.drainStart = c.clock
		} else {
			c.Tel.Span("dram", "write-drain", c.drainStart, c.clock)
		}
	}
	if len(c.writeQ) >= c.cfg.WriteQ && c.burstLeft == 0 {
		c.burstLeft = writeBurstMin // full queue: force a burst now
	}
}

// scheduleOne issues at most one transaction and reports whether it did.
// Priority: demand reads always go first (§VII-A.6: "a write queue
// draining policy, which prioritizes a demand read over the write");
// above the high watermark writes drain ahead of prefetch/metadata reads;
// otherwise writes only use idle slots.
func (c *Controller) scheduleOne(now uint64) bool {
	if len(c.inService) >= c.cfg.MaxInFlight {
		return false
	}
	// A started write burst runs to completion so the bus pays one
	// turnaround per burst, not one per write. A full write queue forces
	// a burst (liveness); otherwise bursts start only when no demand read
	// is waiting.
	if c.burstLeft > 0 {
		if len(c.writeQ) == 0 {
			c.burstLeft = 0
		} else if c.issueWrite(now) {
			c.burstLeft--
			return true
		}
	}
	if c.issueRead(now, true) {
		return true
	}
	if c.draining && c.burstLeft == 0 {
		c.burstLeft = writeBurstMin
		if c.issueWrite(now) {
			c.burstLeft--
			return true
		}
	}
	if c.issueRead(now, false) {
		return true
	}
	// Writes below the watermark only drain in bursts: singly interleaved
	// writes would pay two bus turnarounds each. A mini-burst starts when
	// the read queue is idle with enough writes banked, or when the
	// controller is otherwise fully idle (end-of-phase flush).
	if len(c.readQ) == 0 && (len(c.writeQ) >= writeBurstMin || len(c.inService) == 0) {
		return c.issueWrite(now)
	}
	return false
}

// writeBurstMin is the smallest opportunistic write burst worth a bus
// turnaround.
const writeBurstMin = 8

func (c *Controller) issueRead(now uint64, demandOnly bool) bool {
	for i, r := range c.readQ {
		if demandOnly != r.Type.IsDemand() {
			continue
		}
		b := &c.banks[c.bankOf(r.Line)]
		if b.readyAt > now {
			if demandOnly {
				// FCFS: an older blocked demand read blocks younger ones
				// to the same bank but not other banks; to keep the model
				// simple (and pessimistic only for pathological traces) we
				// skip just this request.
				continue
			}
			continue
		}
		c.readQ = append(c.readQ[:i], c.readQ[i+1:]...)
		finish := c.serve(r.Line, now, false)
		c.account(r)
		c.inService = append(c.inService, pending{r, finish})
		return true
	}
	return false
}

func (c *Controller) issueWrite(now uint64) bool {
	for i, r := range c.writeQ {
		b := &c.banks[c.bankOf(r.Line)]
		if b.readyAt > now {
			continue
		}
		c.writeQ = append(c.writeQ[:i], c.writeQ[i+1:]...)
		c.serve(r.Line, now, true)
		c.account(r)
		return true
	}
	return false
}

// serve runs the bank/bus timing state machine for one line transfer and
// returns the cycle at which the data is fully transferred.
func (c *Controller) serve(line mem.Addr, now uint64, write bool) uint64 {
	b := &c.banks[c.bankOf(line)]
	row := c.rowOf(line)

	var access, bankBusy uint64
	switch {
	case b.rowOpened && b.openRow == row:
		// Column accesses to an open row pipeline at tCCD, which equals
		// the burst length; only the first access pays the full CAS.
		access = c.cfg.TCAS
		bankBusy = c.cfg.BurstCycles
		c.Stats.RowHits++
	case b.rowOpened:
		access = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
		bankBusy = access
		c.Stats.RowMisses++
	default:
		access = c.cfg.TRCD + c.cfg.TCAS
		bankBusy = access
		c.Stats.RowMisses++
	}
	b.openRow = row
	b.rowOpened = true

	ch := c.channelOf(line)
	dataStart := now + access
	if c.busFreeAt[ch] > dataStart {
		dataStart = c.busFreeAt[ch]
	}
	if c.lastWrite[ch] != write {
		dataStart += c.cfg.Turnaround
	}
	finish := dataStart + c.cfg.BurstCycles
	c.busFreeAt[ch] = finish
	c.lastWrite[ch] = write
	b.readyAt = now + bankBusy
	c.Stats.BusBusyCycles += c.cfg.BurstCycles
	return finish
}

// RegisterProbes registers the controller's sampled series under prefix
// (e.g. "dram."): read/write queue occupancy, the row-buffer hit rate
// over the previous sample interval and data-bus utilisation. Pull-style
// probes leave the scheduling loop untouched; a nil recorder is a no-op.
func (c *Controller) RegisterProbes(tel *telemetry.Recorder, prefix string) {
	if tel == nil {
		return
	}
	tel.Probe(prefix+"readq", func(uint64) float64 { return float64(len(c.readQ)) })
	tel.Probe(prefix+"writeq", func(uint64) float64 { return float64(len(c.writeQ)) })
	var lastHits, lastMisses uint64
	tel.Probe(prefix+"row_hit_rate", func(uint64) float64 {
		dh := c.Stats.RowHits - lastHits
		dm := c.Stats.RowMisses - lastMisses
		lastHits, lastMisses = c.Stats.RowHits, c.Stats.RowMisses
		if dh+dm == 0 {
			return 0
		}
		return float64(dh) / float64(dh+dm)
	})
	var lastBusy, lastCycle uint64
	tel.Probe(prefix+"bus_util", func(cycle uint64) float64 {
		db := c.Stats.BusBusyCycles - lastBusy
		dc := cycle - lastCycle
		lastBusy, lastCycle = c.Stats.BusBusyCycles, cycle
		if dc == 0 {
			return 0
		}
		// Busy cycles accumulate across channels; normalise per channel.
		return float64(db) / float64(dc) / float64(c.cfg.Channels)
	})
}

func (c *Controller) account(r *mem.Request) {
	switch r.Type {
	case mem.ReqLoad, mem.ReqStore:
		c.Stats.Reads++
		c.Stats.DemandReads++
	case mem.ReqPrefetch:
		c.Stats.Reads++
		c.Stats.PrefetchReads++
	case mem.ReqMetaRead:
		c.Stats.Reads++
		c.Stats.MetaReads++
	case mem.ReqMetaWrite:
		c.Stats.Writes++
		c.Stats.MetaWrites++
	case mem.ReqWriteback:
		c.Stats.Writes++
		c.Stats.Writebacks++
	}
}
