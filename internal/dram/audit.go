package dram

import (
	"fmt"

	"rnrsim/internal/mem"
)

// Audit hooks. The shapes (report func(law string) and mix func(uint64))
// are chosen so this package needs no audit import; internal/sim adapts
// them onto the audit.Checker and audit.Hash.

// AuditInvariants validates the controller's conservation laws and
// structural bounds.
func (c *Controller) AuditInvariants(report func(law string)) {
	if n := len(c.readQ); n > c.cfg.ReadQ {
		report(fmt.Sprintf("readQ occupancy %d exceeds capacity %d", n, c.cfg.ReadQ))
	}
	if n := len(c.writeQ); n > c.cfg.WriteQ {
		report(fmt.Sprintf("writeQ occupancy %d exceeds capacity %d", n, c.cfg.WriteQ))
	}
	// Tick's guaranteed low-priority issue slot allows one transfer past
	// MaxInFlight, never more.
	if n := len(c.inService); n > c.cfg.MaxInFlight+1 {
		report(fmt.Sprintf("inService %d exceeds MaxInFlight+1 = %d", n, c.cfg.MaxInFlight+1))
	}

	// Conservation: every read accounted at issue either finished its
	// data transfer (doneReads) or is still in service. Writes are
	// posted at enqueue and never enter inService.
	if c.Stats.Reads != c.doneReads+uint64(len(c.inService)) {
		report(fmt.Sprintf("read conservation: %d issued != %d done + %d in service",
			c.Stats.Reads, c.doneReads, len(c.inService)))
	}

	// Traffic-class accounting: issue and account happen in the same
	// call, so the class splits always sum to the totals.
	s := &c.Stats
	if s.DemandReads+s.PrefetchReads+s.MetaReads != s.Reads {
		report(fmt.Sprintf("read classes: demand %d + prefetch %d + meta %d != reads %d",
			s.DemandReads, s.PrefetchReads, s.MetaReads, s.Reads))
	}
	if s.MetaWrites+s.Writebacks != s.Writes {
		report(fmt.Sprintf("write classes: meta %d + writeback %d != writes %d",
			s.MetaWrites, s.Writebacks, s.Writes))
	}
	if s.RowHits+s.RowMisses != s.Reads+s.Writes {
		report(fmt.Sprintf("row-buffer accounting: hits %d + misses %d != transfers %d",
			s.RowHits, s.RowMisses, s.Reads+s.Writes))
	}

	for i, p := range c.inService {
		if p.req == nil {
			report(fmt.Sprintf("inService[%d] holds nil request", i))
			continue
		}
		if p.req.Type == mem.ReqWriteback || p.req.Type == mem.ReqMetaWrite {
			report(fmt.Sprintf("inService[%d] holds posted write %s", i, p.req.Type))
		}
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.rowOpened && b.openRow < 0 {
			report(fmt.Sprintf("bank %d open with row %d", i, b.openRow))
		}
		if !b.rowOpened && b.openRow != -1 {
			report(fmt.Sprintf("bank %d precharged but row register %d", i, b.openRow))
		}
	}
}

// HashState folds the controller's complete state — bank registers,
// queues, in-service transfers, bus bookkeeping and statistics — into
// the caller's hasher. All containers are slices iterated in order, so
// the digest is deterministic.
func (c *Controller) HashState(mix func(uint64)) {
	for i := range c.banks {
		b := &c.banks[i]
		mix(uint64(b.openRow))
		mix(b.readyAt)
		mix(dramBoolWord(b.rowOpened))
	}
	mix(uint64(len(c.readQ)))
	for _, r := range c.readQ {
		dramHashRequest(r, mix)
	}
	mix(uint64(len(c.writeQ)))
	for _, r := range c.writeQ {
		dramHashRequest(r, mix)
	}
	mix(uint64(len(c.inService)))
	for _, p := range c.inService {
		mix(p.finish)
		dramHashRequest(p.req, mix)
	}
	for ch := range c.busFreeAt {
		mix(c.busFreeAt[ch])
		mix(dramBoolWord(c.lastWrite[ch]))
	}
	mix(dramBoolWord(c.draining))
	mix(uint64(int64(c.burstLeft)))
	mix(c.doneReads)

	s := &c.Stats
	for _, v := range []uint64{
		s.Reads, s.Writes, s.DemandReads, s.PrefetchReads, s.MetaReads,
		s.MetaWrites, s.Writebacks, s.RowHits, s.RowMisses,
		s.BusBusyCycles, s.ReadQFullStall,
	} {
		mix(v)
	}
}

func dramHashRequest(r *mem.Request, mix func(uint64)) {
	mix(uint64(r.Type))
	mix(uint64(r.Addr))
	mix(uint64(r.Line))
	mix(r.PC)
	mix(uint64(int64(r.Core)))
	mix(uint64(int64(r.RegionID)))
	mix(dramBoolWord(r.StructFlag))
	mix(r.Issue)
}

func dramBoolWord(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
