package dram

import (
	"testing"

	"rnrsim/internal/mem"
)

func TestChannelsIncreaseThroughput(t *testing.T) {
	// A random read stream over many rows should finish roughly twice as
	// fast with two channels.
	stream := func(channels int) uint64 {
		cfg := testConfig()
		cfg.Channels = channels
		// Enough scheduling slots that the data bus, not the controller,
		// is the binding constraint.
		cfg.MaxInFlight = 24
		c := New(cfg)
		const n = 64
		var done [n]uint64
		next := 0
		for cycle := uint64(1); cycle < 200000; cycle++ {
			for next < n {
				r := load(mem.Addr(uint64(next)*cfg.RowBytes*7+0x40), &done[next])
				if !c.TryEnqueue(r) {
					break
				}
				next++
			}
			c.Tick(cycle)
			alldone := true
			for i := range done {
				if done[i] == 0 {
					alldone = false
					break
				}
			}
			if alldone {
				return cycle
			}
		}
		t.Fatal("stream never finished")
		return 0
	}
	one := stream(1)
	four := stream(4)
	if float64(four) > float64(one)*0.6 {
		t.Errorf("4 channels took %d cycles vs %d with 1 — no parallelism", four, one)
	}
}

func TestChannelAddressingCoversAllBanks(t *testing.T) {
	cfg := testConfig()
	cfg.Channels = 4
	c := New(cfg)
	seen := map[int]bool{}
	for i := 0; i < 4096; i++ {
		seen[c.bankOf(mem.Addr(i)*mem.Addr(cfg.RowBytes))] = true
	}
	if len(seen) != cfg.Banks*cfg.Channels {
		t.Errorf("addressing reaches %d banks, want %d", len(seen), cfg.Banks*cfg.Channels)
	}
}

func TestWriteDrainBurstsAmortiseTurnaround(t *testing.T) {
	// Interleaved single writes pay a bus turnaround each; the burst
	// policy must drain a full write queue while reads keep arriving
	// without collapsing read throughput.
	cfg := testConfig()
	c := New(cfg)
	var reads [48]uint64
	nextRead := 0
	writes := 0
	for cycle := uint64(1); cycle < 100000; cycle++ {
		// Steady trickle of writes and reads.
		if cycle%7 == 0 && writes < 64 {
			wb := mem.NewRequest(mem.ReqWriteback, mem.Addr(writes)*0x40, 0, -1, 0)
			if c.TryEnqueue(wb) {
				writes++
			}
		}
		if cycle%11 == 0 && nextRead < len(reads) {
			if c.TryEnqueue(load(mem.Addr(0x800000+nextRead*0x40), &reads[nextRead])) {
				nextRead++
			}
		}
		c.Tick(cycle)
		done := nextRead == len(reads) && writes == 64 && c.Pending() == 0
		if done {
			for i := range reads {
				if reads[i] == 0 {
					t.Fatalf("read %d lost", i)
				}
			}
			return
		}
	}
	t.Fatalf("mixed stream never drained: pending=%d writes=%d reads=%d", c.Pending(), writes, nextRead)
}

func TestFullWriteQueueForcesDrain(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	// Fill the write queue to capacity, then keep demand reads flowing:
	// the forced burst must make room so later writebacks are accepted.
	for i := 0; i < cfg.WriteQ; i++ {
		wb := mem.NewRequest(mem.ReqWriteback, mem.Addr(i)*0x40, 0, -1, 0)
		if !c.TryEnqueue(wb) {
			t.Fatalf("write %d rejected below capacity", i)
		}
	}
	var sink uint64
	c.TryEnqueue(load(0x500000, &sink))
	accepted := false
	for cycle := uint64(1); cycle < 5000; cycle++ {
		c.Tick(cycle)
		if !accepted {
			wb := mem.NewRequest(mem.ReqWriteback, 0x999940, 0, -1, 0)
			accepted = c.TryEnqueue(wb)
		}
	}
	if !accepted {
		t.Error("write queue never drained below capacity")
	}
	if sink == 0 {
		t.Error("demand read starved by the forced drain")
	}
}

func TestRowHitsForSequentialMetadata(t *testing.T) {
	// RnR metadata is streamed sequentially: the row-hit rate must be
	// high, which is the basis of the paper's "metadata traffic is
	// efficient" argument (§VII-A.7).
	cfg := testConfig()
	c := New(cfg)
	const n = 64
	done := 0
	next := 0
	for cycle := uint64(1); cycle < 100000 && done < n; cycle++ {
		for next < n {
			r := mem.NewRequest(mem.ReqMetaRead, mem.Addr(0x70000000+next*0x40), 0, 0, 0)
			r.Done = func(uint64) { done++ }
			if !c.TryEnqueue(r) {
				break
			}
			next++
		}
		c.Tick(cycle)
	}
	if done != n {
		t.Fatalf("metadata stream incomplete: %d/%d", done, n)
	}
	if c.Stats.RowHits < uint64(n)*3/4 {
		t.Errorf("metadata stream row hits %d/%d, want >= 75%%", c.Stats.RowHits, n)
	}
}
