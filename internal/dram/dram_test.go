package dram

import (
	"testing"

	"rnrsim/internal/mem"
)

func testConfig() Config {
	c := Default()
	c.MaxInFlight = 4
	return c
}

func load(addr mem.Addr, done *uint64) *mem.Request {
	r := mem.NewRequest(mem.ReqLoad, addr, 0, 0, 0)
	r.Done = func(cy uint64) { *done = cy }
	return r
}

func drive(c *Controller, cycles int) {
	start := c.clock
	for i := 1; i <= cycles; i++ {
		c.Tick(start + uint64(i))
	}
}

func TestSingleReadLatency(t *testing.T) {
	c := New(testConfig())
	var done uint64
	if !c.TryEnqueue(load(0x1000, &done)) {
		t.Fatal("enqueue failed")
	}
	drive(c, 500)
	if done == 0 {
		t.Fatal("read never completed")
	}
	cfg := testConfig()
	min := cfg.TRCD + cfg.TCAS + cfg.BurstCycles
	if done < min {
		t.Errorf("closed-row read completed at %d, want >= %d", done, min)
	}
	if done > min+20 {
		t.Errorf("idle read took %d cycles, want about %d", done, min)
	}
	if c.Stats.Reads != 1 || c.Stats.DemandReads != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestRowBufferHitIsFaster(t *testing.T) {
	c := New(testConfig())
	var d1, d2 uint64
	c.TryEnqueue(load(0x0, &d1))
	drive(c, 300)
	c.TryEnqueue(load(0x40, &d2)) // same row, next line
	start := c.clock
	drive(c, 300)
	if d2 == 0 {
		t.Fatal("second read never completed")
	}
	hitLat := d2 - start
	cfg := testConfig()
	if hitLat > cfg.TCAS+cfg.BurstCycles+5 {
		t.Errorf("row hit latency %d, want <= %d", hitLat, cfg.TCAS+cfg.BurstCycles)
	}
	if c.Stats.RowHits != 1 || c.Stats.RowMisses != 1 {
		t.Errorf("row stats %+v", c.Stats)
	}
}

func TestRowConflictIsSlower(t *testing.T) {
	c := New(testConfig())
	cfg := testConfig()
	rowStride := mem.Addr(cfg.RowBytes * uint64(cfg.Banks)) // same bank, next row
	var d1, d2 uint64
	c.TryEnqueue(load(0x0, &d1))
	drive(c, 300)
	start := c.clock
	c.TryEnqueue(load(rowStride, &d2))
	drive(c, 500)
	if d2 == 0 {
		t.Fatal("conflicting read never completed")
	}
	confLat := d2 - start
	min := cfg.TRP + cfg.TRCD + cfg.TCAS
	if confLat < min {
		t.Errorf("row conflict latency %d, want >= %d", confLat, min)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	cfg := testConfig()
	// Two reads to different banks should overlap; two to the same bank
	// (different rows) serialise on the bank.
	run := func(a, b mem.Addr) uint64 {
		c := New(cfg)
		var d1, d2 uint64
		c.TryEnqueue(load(a, &d1))
		c.TryEnqueue(load(b, &d2))
		drive(c, 2000)
		if d1 == 0 || d2 == 0 {
			t.Fatal("reads never completed")
		}
		if d2 > d1 {
			return d2
		}
		return d1
	}
	diffBank := run(0, mem.Addr(cfg.RowBytes))                   // banks 0 and 1
	sameBank := run(0, mem.Addr(cfg.RowBytes*uint64(cfg.Banks))) // bank 0 rows 0,1
	if diffBank >= sameBank {
		t.Errorf("bank parallelism: different banks %d cycles, same bank %d", diffBank, sameBank)
	}
}

func TestDemandPriorityOverPrefetch(t *testing.T) {
	c := New(testConfig())
	var pfDone, ldDone uint64
	pf := mem.NewRequest(mem.ReqPrefetch, 0x10000, 0, 0, 0)
	pf.Done = func(cy uint64) { pfDone = cy }
	// Enqueue prefetch first, then a demand to a different bank: both are
	// ready, the demand must be scheduled first.
	cfg := testConfig()
	c.TryEnqueue(pf)
	c.TryEnqueue(load(mem.Addr(cfg.RowBytes*3), &ldDone))
	drive(c, 1000)
	if pfDone == 0 || ldDone == 0 {
		t.Fatal("requests never completed")
	}
	if ldDone > pfDone {
		t.Errorf("demand finished at %d after prefetch at %d", ldDone, pfDone)
	}
	if c.Stats.PrefetchReads != 1 || c.Stats.DemandReads != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestWritesArePostedAndDrained(t *testing.T) {
	c := New(testConfig())
	done := 0
	for i := 0; i < 10; i++ {
		wb := mem.NewRequest(mem.ReqWriteback, mem.Addr(i*0x40), 0, -1, 0)
		wb.Done = func(cy uint64) { done++ }
		if !c.TryEnqueue(wb) {
			t.Fatalf("write %d rejected", i)
		}
	}
	if done != 10 {
		t.Errorf("posted writes completed %d/10 immediately", done)
	}
	drive(c, 5000)
	if c.Stats.Writes != 10 {
		t.Errorf("drained %d writes, want 10", c.Stats.Writes)
	}
	if c.WriteQLen() != 0 {
		t.Errorf("write queue still has %d entries", c.WriteQLen())
	}
}

func TestWriteDrainWatermark(t *testing.T) {
	cfg := testConfig()
	c := New(cfg)
	// Fill the write queue past the high watermark while reads keep coming;
	// the drain must still make progress.
	high := int(float64(cfg.WriteQ)*cfg.DrainHigh) + 1
	for i := 0; i < high; i++ {
		wb := mem.NewRequest(mem.ReqWriteback, mem.Addr(i)*0x40, 0, -1, 0)
		c.TryEnqueue(wb)
	}
	var dones [8]uint64
	for i := range dones {
		c.TryEnqueue(load(mem.Addr(0x100000+i*0x40), &dones[i]))
	}
	drive(c, 20000)
	if c.WriteQLen() > int(float64(cfg.WriteQ)*cfg.DrainLow) {
		t.Errorf("write queue not drained below low watermark: %d", c.WriteQLen())
	}
	for i, d := range dones {
		if d == 0 {
			t.Errorf("read %d starved during drain", i)
		}
	}
}

func TestReadQueueBackpressure(t *testing.T) {
	cfg := testConfig()
	cfg.ReadQ = 4
	c := New(cfg)
	var sink uint64
	for i := 0; i < 4; i++ {
		if !c.TryEnqueue(load(mem.Addr(i*0x40), &sink)) {
			t.Fatalf("read %d rejected below capacity", i)
		}
	}
	if c.TryEnqueue(load(0x9999, &sink)) {
		t.Error("read accepted above capacity")
	}
	if c.Stats.ReadQFullStall != 1 {
		t.Errorf("stall count %d", c.Stats.ReadQFullStall)
	}
}

func TestMetadataAccounting(t *testing.T) {
	c := New(testConfig())
	var d uint64
	mr := mem.NewRequest(mem.ReqMetaRead, 0x40000, 0, 0, 0)
	mr.Done = func(cy uint64) { d = cy }
	c.TryEnqueue(mr)
	mw := mem.NewRequest(mem.ReqMetaWrite, 0x50000, 0, 0, 0)
	c.TryEnqueue(mw)
	drive(c, 2000)
	if d == 0 {
		t.Fatal("metadata read never completed")
	}
	if c.Stats.MetaReads != 1 || c.Stats.MetaWrites != 1 {
		t.Errorf("stats %+v", c.Stats)
	}
	if got := c.Stats.TotalTraffic(); got != 2 {
		t.Errorf("TotalTraffic = %d, want 2", got)
	}
}

func TestStreamingThroughput(t *testing.T) {
	// A sequential stream should be row-hit dominated and bus-bound:
	// N lines should take roughly N*BurstCycles once the pipe is warm.
	cfg := testConfig()
	c := New(cfg)
	const n = 32
	var done [n]uint64
	next := 0
	for cycle := uint64(1); cycle < 50000; cycle++ {
		for next < n && c.TryEnqueue(load(mem.Addr(next*0x40), &done[next])) {
			next++
		}
		c.Tick(cycle)
		if done[n-1] != 0 {
			break
		}
	}
	if done[n-1] == 0 {
		t.Fatal("stream never finished")
	}
	if c.Stats.RowHits < n-4 {
		t.Errorf("streaming row hits = %d/%d", c.Stats.RowHits, n)
	}
	total := done[n-1] - done[0]
	perLine := float64(total) / float64(n-1)
	if perLine > float64(cfg.BurstCycles)*2 {
		t.Errorf("streaming %f cycles/line, want near %d", perLine, cfg.BurstCycles)
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New accepted an invalid config")
		}
	}()
	New(Config{Banks: 0})
}
