package coherence

import (
	"testing"

	"rnrsim/internal/mem"
)

func TestStoreInvalidatesOtherSharers(t *testing.T) {
	d := NewDirectory(4)
	line := mem.Addr(0x1000)
	d.OnFill(0, line)
	d.OnFill(1, line)
	d.OnFill(3, line)
	if got := d.Sharers(line); got != 0b1011 {
		t.Fatalf("sharers = %#b, want 0b1011", got)
	}
	victims := d.OnStore(1, line)
	if len(victims) != 2 || victims[0] != 0 || victims[1] != 3 {
		t.Fatalf("victims = %v, want [0 3]", victims)
	}
	if st := d.LineState(line); st != Modified {
		t.Fatalf("state = %v, want M", st)
	}
	if got := d.Sharers(line); got != 0b0010 {
		t.Fatalf("post-store sharers = %#b, want writer only", got)
	}
	if d.Stats.Upgrades != 1 || d.Stats.Invalidations != 2 {
		t.Fatalf("stats = %+v, want 1 upgrade / 2 invalidations", d.Stats)
	}
}

func TestStoreToPrivateLineIsSilent(t *testing.T) {
	d := NewDirectory(2)
	line := mem.Addr(0x2000)
	d.OnFill(0, line)
	if v := d.OnStore(0, line); len(v) != 0 {
		t.Fatalf("sole sharer store invalidated %v", v)
	}
	if d.Stats.Upgrades != 0 || d.Stats.Invalidations != 0 {
		t.Fatalf("silent upgrade counted: %+v", d.Stats)
	}
	// Writing again while Modified stays silent too.
	if v := d.OnStore(0, line); len(v) != 0 {
		t.Fatalf("M-state store invalidated %v", v)
	}
}

func TestRemoteFillDowngradesModified(t *testing.T) {
	d := NewDirectory(2)
	line := mem.Addr(0x3000)
	d.OnFill(0, line)
	d.OnStore(0, line)
	d.OnFill(1, line)
	if st := d.LineState(line); st != Shared {
		t.Fatalf("state after remote fill = %v, want S", st)
	}
	if d.Stats.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", d.Stats.Downgrades)
	}
	if got := d.Sharers(line); got != 0b11 {
		t.Fatalf("sharers = %#b, want both", got)
	}
}

func TestEvictDropsEntryAtLastSharer(t *testing.T) {
	d := NewDirectory(2)
	line := mem.Addr(0x4000)
	d.OnFill(0, line)
	d.OnFill(1, line)
	d.OnEvict(0, line)
	if d.Tracked() != 1 || d.Sharers(line) != 0b10 {
		t.Fatalf("after first evict: tracked=%d sharers=%#b", d.Tracked(), d.Sharers(line))
	}
	d.OnEvict(1, line)
	if d.Tracked() != 0 {
		t.Fatalf("entry survived last evict: tracked=%d", d.Tracked())
	}
	// Evicting an untracked line is a no-op.
	d.OnEvict(1, line)
	if d.Stats.Evicts != 2 {
		t.Fatalf("evicts = %d, want 2", d.Stats.Evicts)
	}
}

func TestOwnerEvictDemotesToShared(t *testing.T) {
	d := NewDirectory(2)
	line := mem.Addr(0x5000)
	d.OnFill(0, line)
	d.OnStore(0, line)
	d.OnFill(1, line) // downgrade M->S, both share
	d.OnStore(1, line)
	d.OnFill(0, line) // back to S, owner 1
	d.OnEvict(1, line)
	if st := d.LineState(line); st != Shared {
		t.Fatalf("state after owner evict = %v, want S", st)
	}
}

func TestAuditInvariantsClean(t *testing.T) {
	d := NewDirectory(4)
	for i := 0; i < 64; i++ {
		line := mem.Addr(0x1000 + i*64)
		d.OnFill(i%4, line)
		d.OnFill((i+1)%4, line)
		if i%3 == 0 {
			d.OnStore(i%4, line)
		}
	}
	var violations []string
	d.AuditInvariants(func(line mem.Addr) uint64 { return d.Sharers(line) },
		func(v string) { violations = append(violations, v) })
	if len(violations) != 0 {
		t.Fatalf("clean directory reported: %v", violations)
	}
}

func TestAuditInvariantsCatchUntrackedHolder(t *testing.T) {
	d := NewDirectory(2)
	line := mem.Addr(0x6000)
	d.OnFill(0, line)
	var violations []string
	// Claim core 1 also holds the line: inclusion must fail.
	d.AuditInvariants(func(mem.Addr) uint64 { return 0b11 },
		func(v string) { violations = append(violations, v) })
	if len(violations) == 0 {
		t.Fatal("holder outside sharer mask went unreported")
	}
}
