// Package coherence implements the MESI-lite coherence filter the
// multicore system places in front of the shared LLC: a directory of
// per-line {state, sharer bitmask, owner} entries with invalidate-on-
// write semantics. "Lite" means exactly the three states the timing
// model can observe (Invalid, Shared, Modified) and no forwarding
// network: a store to a shared line invalidates the other private
// copies, and the cost modelled is the victims' future warm-up misses
// — the same modelling discipline the context-switch pollution path
// uses. The trace simulator carries no data, so E is indistinguishable
// from M and dirty invalidated lines are dropped without forwarding.
//
// The directory is deliberately excluded from the architectural state
// hash: its observable effects (lines removed from private caches) are
// already hashed through the cache tag arrays, and with one core no
// invalidation can ever fire — which is what keeps a 1-core
// coherence-enabled machine byte-identical to the uncoherent one.
package coherence

import (
	"fmt"
	"math/bits"
	"sort"

	"rnrsim/internal/mem"
)

// State is the MESI-lite line state as tracked by the directory.
type State uint8

// The tracked states. Exclusive is folded into Modified: without data
// movement the timing model cannot distinguish a silent E->M upgrade.
const (
	Invalid State = iota
	Shared
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// MaxCores bounds the sharer bitmask width.
const MaxCores = 64

// Stats counts the directory's coherence events.
type Stats struct {
	Upgrades      uint64 `json:"upgrades"`      // stores that took S->M (or stole M ownership)
	Invalidations uint64 `json:"invalidations"` // private copies invalidated by remote stores
	Downgrades    uint64 `json:"downgrades"`    // M->S transitions on a remote read
	Fills         uint64 `json:"fills"`         // sharer-set inserts (private-cache fills)
	Evicts        uint64 `json:"evicts"`        // sharer-set removals (private-cache evictions)
}

type entry struct {
	state   State
	sharers uint64 // bit c set = core c's private hierarchy may hold the line
	owner   int8   // meaningful when state == Modified
}

// Directory tracks every line resident in at least one private cache.
// It is driven by the simulator's cache hooks (fill, store, evict) and
// answers with the set of cores whose copies must be invalidated. All
// methods are deterministic; iteration over the map happens only in
// audit sweeps, sorted.
type Directory struct {
	cores   int
	lines   map[mem.Addr]entry
	scratch []int
	Stats   Stats
}

// NewDirectory builds a directory for n cores (1 <= n <= MaxCores).
func NewDirectory(n int) *Directory {
	if n < 1 || n > MaxCores {
		panic(fmt.Sprintf("coherence: %d cores outside [1, %d]", n, MaxCores))
	}
	return &Directory{cores: n, lines: make(map[mem.Addr]entry)}
}

// OnFill records that core's private hierarchy installed line. A fill
// of a line another core holds Modified downgrades it to Shared (the
// read that caused this fill already fetched current data through the
// shared levels; no forwarding is modelled).
func (d *Directory) OnFill(core int, line mem.Addr) {
	e := d.lines[line]
	if e.state == Modified && int(e.owner) != core {
		e.state = Shared
		d.Stats.Downgrades++
	}
	if e.state == Invalid {
		e.state = Shared
	}
	if e.sharers&(1<<uint(core)) == 0 {
		d.Stats.Fills++
	}
	e.sharers |= 1 << uint(core)
	d.lines[line] = e
}

// OnStore records a store by core to line and returns the cores whose
// private copies must be invalidated (every sharer but the writer).
// The returned slice is reused across calls; consume it before the
// next OnStore. The line ends Modified with core as the sole sharer.
func (d *Directory) OnStore(core int, line mem.Addr) []int {
	e := d.lines[line]
	d.scratch = d.scratch[:0]
	others := e.sharers &^ (1 << uint(core))
	if others != 0 {
		d.Stats.Upgrades++
		d.Stats.Invalidations += uint64(bits.OnesCount64(others))
		for c := 0; others != 0; c, others = c+1, others>>1 {
			if others&1 != 0 {
				d.scratch = append(d.scratch, c)
			}
		}
	}
	e.state = Modified
	e.owner = int8(core)
	e.sharers = 1 << uint(core)
	d.lines[line] = e
	return d.scratch
}

// OnEvict records that core's private hierarchy no longer holds line
// (both its L1 and L2 evicted it). The entry is dropped once the last
// sharer leaves, keeping the directory sized by private-cache contents.
func (d *Directory) OnEvict(core int, line mem.Addr) {
	e, ok := d.lines[line]
	if !ok || e.sharers&(1<<uint(core)) == 0 {
		return
	}
	d.Stats.Evicts++
	e.sharers &^= 1 << uint(core)
	if e.sharers == 0 {
		delete(d.lines, line)
		return
	}
	if e.state == Modified && int(e.owner) == core {
		// The owner left; the remaining copies are clean readers.
		e.state = Shared
	}
	d.lines[line] = e
}

// Reset drops every tracked line. The simulator calls it when the
// private caches are invalidated wholesale (context switch-in), a path
// that bypasses the per-line eviction hooks; stats are kept cumulative.
func (d *Directory) Reset() {
	for l := range d.lines {
		delete(d.lines, l)
	}
}

// HasSharer reports whether the directory believes core holds line.
func (d *Directory) HasSharer(core int, line mem.Addr) bool {
	return d.lines[line].sharers&(1<<uint(core)) != 0
}

// Sharers returns the sharer bitmask for line (0 when untracked).
func (d *Directory) Sharers(line mem.Addr) uint64 { return d.lines[line].sharers }

// LineState returns the tracked state of line.
func (d *Directory) LineState(line mem.Addr) State { return d.lines[line].state }

// Tracked returns the number of lines currently tracked.
func (d *Directory) Tracked() int { return len(d.lines) }

// AuditInvariants sweeps the directory's internal laws:
//
//	M-entry geometry   a Modified line has exactly one sharer, the owner
//	S-entry geometry   a Shared line has at least one sharer
//	no empty entries   every tracked line has a sharer (evict deletes)
//
// holders, when non-nil, maps a line to the bitmask of cores whose
// private caches actually hold it; the sweep then checks the inclusion
// law sharer-mask ⊇ actual holders (a held line the directory lost
// track of is a stale copy a remote store could never invalidate).
// Lines are visited in sorted order so violation reports are stable.
func (d *Directory) AuditInvariants(holders func(line mem.Addr) uint64, report func(string)) {
	lines := make([]mem.Addr, 0, len(d.lines))
	for l := range d.lines {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	for _, l := range lines {
		e := d.lines[l]
		switch {
		case e.sharers == 0:
			report(fmt.Sprintf("line %#x tracked with empty sharer set", uint64(l)))
		case e.state == Modified:
			if bits.OnesCount64(e.sharers) != 1 {
				report(fmt.Sprintf("line %#x Modified with %d sharers (mask %#x)",
					uint64(l), bits.OnesCount64(e.sharers), e.sharers))
			} else if e.sharers != 1<<uint(e.owner) {
				report(fmt.Sprintf("line %#x Modified: owner %d not the sharer (mask %#x)",
					uint64(l), e.owner, e.sharers))
			}
		case e.state == Invalid:
			report(fmt.Sprintf("line %#x tracked in state I with mask %#x", uint64(l), e.sharers))
		}
		if holders != nil {
			if held := holders(l); held&^e.sharers != 0 {
				report(fmt.Sprintf("line %#x held by cores %#x outside sharer mask %#x",
					uint64(l), held&^e.sharers, e.sharers))
			}
		}
	}
}
