package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func allMatrices() map[string]*Matrix {
	return map[string]*Matrix{
		"atmosmodj": Stencil3D(8, 8, 8),
		"bbmat":     Banded(400, 24, 0.2, 1),
		"nlpkkt80":  BlockStencil(5, 5, 5, 4),
		"pdb1HYS":   ProteinBlocks(30, 12, 3, 2),
	}
}

func TestGeneratorsProduceValidCSR(t *testing.T) {
	for name, m := range allMatrices() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.N == 0 || m.NNZ() == 0 {
			t.Errorf("%s: empty matrix", name)
		}
	}
}

func TestGeneratorsSymmetric(t *testing.T) {
	for name, m := range allMatrices() {
		kind := map[[2]uint32]float64{}
		for i := 0; i < m.N; i++ {
			cols, vals := m.Row(i)
			for k, c := range cols {
				kind[[2]uint32{uint32(i), c}] = vals[k]
			}
		}
		for key, v := range kind {
			if w, ok := kind[[2]uint32{key[1], key[0]}]; !ok || w != v {
				t.Fatalf("%s: entry (%d,%d)=%g has no symmetric twin", name, key[0], key[1], v)
			}
		}
	}
}

func TestGeneratorsDiagonallyDominant(t *testing.T) {
	for name, m := range allMatrices() {
		for i := 0; i < m.N; i++ {
			cols, vals := m.Row(i)
			var diag, off float64
			for k, c := range cols {
				if int(c) == i {
					diag = vals[k]
				} else {
					off += math.Abs(vals[k])
				}
			}
			if diag <= off {
				t.Fatalf("%s: row %d not diagonally dominant (%g vs %g)", name, i, diag, off)
			}
		}
	}
}

func TestSpMVAgainstDense(t *testing.T) {
	m := Banded(50, 6, 0.4, 7)
	dense := make([][]float64, m.N)
	for i := range dense {
		dense[i] = make([]float64, m.N)
		cols, vals := m.Row(i)
		for k, c := range cols {
			dense[i][c] = vals[k]
		}
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, m.N)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, m.N)
	m.SpMV(y, x)
	for i := range y {
		var want float64
		for j := range x {
			want += dense[i][j] * x[j]
		}
		if math.Abs(y[i]-want) > 1e-9 {
			t.Fatalf("SpMV row %d = %g, dense says %g", i, y[i], want)
		}
	}
}

func TestCGSolvesAllInputs(t *testing.T) {
	for name, m := range allMatrices() {
		rng := rand.New(rand.NewSource(3))
		want := make([]float64, m.N)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := make([]float64, m.N)
		m.SpMV(b, want)
		x := make([]float64, m.N)
		res, err := CG(m, x, b, 1e-8, 10*m.N)
		if err != nil {
			t.Fatalf("%s: %v (res %+v)", name, err, res)
		}
		for i := range x {
			if math.Abs(x[i]-want[i]) > 1e-5 {
				t.Fatalf("%s: x[%d] = %g, want %g", name, i, x[i], want[i])
			}
		}
		if res.Iterations == 0 {
			t.Errorf("%s: converged in zero iterations — suspicious", name)
		}
	}
}

func TestCGDimensionMismatch(t *testing.T) {
	m := Stencil3D(3, 3, 3)
	_, err := CG(m, make([]float64, 5), make([]float64, m.N), 1e-6, 10)
	if err == nil {
		t.Error("CG accepted mismatched dimensions")
	}
}

func TestCGNoConvergenceReported(t *testing.T) {
	// Note: a constant vector is an eigenvector of the buildSPD
	// construction (every row sums to 1), so use a varying RHS.
	m := Stencil3D(6, 6, 6)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%13) - 6
	}
	x := make([]float64, m.N)
	_, err := CG(m, x, b, 1e-14, 1)
	if err == nil {
		t.Error("CG claimed convergence after 1 iteration at 1e-14")
	}
}

func TestCGResidualMonotonicallyReasonable(t *testing.T) {
	// CG residual in the A-norm is monotone; the 2-norm can fluctuate but
	// the final residual must meet the tolerance.
	m := BlockStencil(4, 4, 4, 3)
	b := make([]float64, m.N)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := make([]float64, m.N)
	res, err := CG(m, x, b, 1e-10, 5*m.N)
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-10 {
		t.Errorf("final residual %g", res.Residual)
	}
}

func TestVectorHelpers(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, -5, 6}
	if got := Dot(a, b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %g", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Errorf("Norm2 = %g", got)
	}
	y := []float64{1, 1}
	Axpy(y, 2, []float64{10, 20})
	if y[0] != 21 || y[1] != 41 {
		t.Errorf("Axpy = %v", y)
	}
}

func TestSummaryAndBytes(t *testing.T) {
	m := Stencil3D(4, 4, 4)
	s := m.Summary()
	if s.N != 64 {
		t.Errorf("N = %d", s.N)
	}
	if s.Bandwidth != 16 { // z-neighbour distance nx*ny
		t.Errorf("bandwidth = %d, want 16", s.Bandwidth)
	}
	want := uint64(65*8) + uint64(m.NNZ())*12 + uint64(2*64)*8
	if m.InputBytes() != want {
		t.Errorf("InputBytes = %d, want %d", m.InputBytes(), want)
	}
}

func TestSpMVLinearityProperty(t *testing.T) {
	m := Banded(60, 5, 0.3, 11)
	prop := func(seed int64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.Abs(alpha) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, m.N)
		z := make([]float64, m.N)
		for i := range x {
			x[i] = rng.NormFloat64()
			z[i] = rng.NormFloat64()
		}
		// A(x + alpha z) == Ax + alpha Az
		lhsIn := make([]float64, m.N)
		for i := range lhsIn {
			lhsIn[i] = x[i] + alpha*z[i]
		}
		lhs := make([]float64, m.N)
		ax := make([]float64, m.N)
		az := make([]float64, m.N)
		m.SpMV(lhs, lhsIn)
		m.SpMV(ax, x)
		m.SpMV(az, z)
		for i := range lhs {
			want := ax[i] + alpha*az[i]
			tol := 1e-7 * (1 + math.Abs(want))
			if math.Abs(lhs[i]-want) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
