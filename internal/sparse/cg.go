package sparse

import (
	"errors"
	"fmt"
	"math"
)

// CG solves A x = b for symmetric positive definite A with the conjugate
// gradient method, the spCG kernel of the paper (sparse CG from the Adept
// benchmark suite [23]). The solver is exact numerics; the trace-side twin
// in internal/apps emits the corresponding memory accesses.

// ErrNoConvergence is returned when CG fails to reach the tolerance.
var ErrNoConvergence = errors.New("sparse: CG did not converge")

// CGResult reports the solve outcome.
type CGResult struct {
	Iterations int
	Residual   float64
}

// CG runs at most maxIter iterations, stopping when ||r|| <= tol*||b||.
// x is used as the initial guess and overwritten with the solution.
func CG(a *Matrix, x, b []float64, tol float64, maxIter int) (CGResult, error) {
	if a.N != len(x) || a.N != len(b) {
		return CGResult{}, fmt.Errorf("sparse: CG dimension mismatch n=%d x=%d b=%d", a.N, len(x), len(b))
	}
	n := a.N
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)

	// r = b - A x, p = r.
	a.SpMV(ap, x)
	for i := range r {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rs := Dot(r, r)
	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		res.Iterations = k
		res.Residual = math.Sqrt(rs) / bnorm
		if res.Residual <= tol {
			return res, nil
		}
		a.SpMV(ap, p)
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("sparse: matrix not SPD (pAp=%g at iter %d)", pap, k)
		}
		alpha := rs / pap
		Axpy(x, alpha, p)
		Axpy(r, -alpha, ap)
		rsNew := Dot(r, r)
		beta := rsNew / rs
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rs = rsNew
	}
	res.Iterations = maxIter
	res.Residual = math.Sqrt(rs) / bnorm
	if res.Residual <= tol {
		return res, nil
	}
	return res, ErrNoConvergence
}
