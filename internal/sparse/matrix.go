// Package sparse provides compressed-sparse-row matrices, synthetic
// generators matching the paper's SuiteSparse inputs (Table III), sparse
// matrix-vector multiplication and a conjugate-gradient solver — the spCG
// workload's numerical substrate.
package sparse

import (
	"fmt"
	"math"
)

// Matrix is a square sparse matrix in CSR form.
type Matrix struct {
	N       int
	Offsets []int64   // len N+1
	Cols    []uint32  // len NNZ
	Vals    []float64 // len NNZ
	Name    string
}

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int64 { return int64(len(m.Cols)) }

// Row returns the column indices and values of row i (shared storage).
func (m *Matrix) Row(i int) ([]uint32, []float64) {
	lo, hi := m.Offsets[i], m.Offsets[i+1]
	return m.Cols[lo:hi], m.Vals[lo:hi]
}

// Validate checks CSR invariants: monotone offsets, in-range and sorted
// columns, matching array lengths.
func (m *Matrix) Validate() error {
	if len(m.Offsets) != m.N+1 {
		return fmt.Errorf("sparse %s: %d offsets for n=%d", m.Name, len(m.Offsets), m.N)
	}
	if len(m.Cols) != len(m.Vals) {
		return fmt.Errorf("sparse %s: %d cols vs %d vals", m.Name, len(m.Cols), len(m.Vals))
	}
	if m.Offsets[0] != 0 || m.Offsets[m.N] != m.NNZ() {
		return fmt.Errorf("sparse %s: offset bounds [%d..%d] for nnz=%d", m.Name, m.Offsets[0], m.Offsets[m.N], m.NNZ())
	}
	for i := 0; i < m.N; i++ {
		if m.Offsets[i+1] < m.Offsets[i] {
			return fmt.Errorf("sparse %s: offsets decrease at row %d", m.Name, i)
		}
		cols, _ := m.Row(i)
		for j, c := range cols {
			if int(c) >= m.N {
				return fmt.Errorf("sparse %s: row %d col %d out of range", m.Name, i, c)
			}
			if j > 0 && cols[j-1] >= c {
				return fmt.Errorf("sparse %s: row %d columns not strictly sorted", m.Name, i)
			}
		}
	}
	return nil
}

// SpMV computes y = A*x.
func (m *Matrix) SpMV(y, x []float64) {
	for i := 0; i < m.N; i++ {
		var sum float64
		lo, hi := m.Offsets[i], m.Offsets[i+1]
		for k := lo; k < hi; k++ {
			sum += m.Vals[k] * x[m.Cols[k]]
		}
		y[i] = sum
	}
}

// InputBytes returns the matrix footprint plus two dense vectors, the
// Fig. 13 storage-overhead denominator for spCG.
func (m *Matrix) InputBytes() uint64 {
	return uint64(len(m.Offsets))*8 + uint64(m.NNZ())*(4+8) + uint64(2*m.N)*8
}

// Stats summarises the matrix for Table III.
type Stats struct {
	N          int
	NNZ        int64
	AvgPerRow  float64
	Bandwidth  int // max |i - j| over stored entries
	InputMB    float64
	SPDChecked bool
}

// Summary computes Table III characteristics.
func (m *Matrix) Summary() Stats {
	band := 0
	for i := 0; i < m.N; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			if d := int(math.Abs(float64(int(c) - i))); d > band {
				band = d
			}
		}
	}
	return Stats{
		N:         m.N,
		NNZ:       m.NNZ(),
		AvgPerRow: float64(m.NNZ()) / float64(maxi(1, m.N)),
		Bandwidth: band,
		InputMB:   float64(m.InputBytes()) / (1 << 20),
	}
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// Axpy computes y += alpha*x.
func Axpy(y []float64, alpha float64, x []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
