package sparse

import (
	"math/rand"
	"sort"
)

// The generators mirror the paper's spCG inputs (Table III), preserving
// the *sparsity structure* that determines memory behaviour:
//
//	atmosmodj — atmospheric model: 3-D 7-point stencil, narrow regular
//	            bands, excellent column locality
//	bbmat     — CFD beam matrix: banded with substantial random fill
//	            inside the band
//	nlpkkt80  — KKT optimisation system: 3-D stencil with block coupling,
//	            wide multi-band structure
//	pdb1HYS   — protein: small dense blocks with long-range couplings,
//	            the most irregular column pattern
//
// All are symmetric positive definite by construction (diagonally
// dominant symmetric), so CG provably converges on them.

type entry struct {
	col uint32
	val float64
}

// buildSPD assembles a symmetric diagonally-dominant CSR matrix from the
// strictly-lower off-diagonal pattern produced by gen (which must emit
// cols < row). Values are negative off-diagonals with a dominant positive
// diagonal, the standard Laplacian-like SPD construction.
func buildSPD(name string, n int, gen func(row int, emit func(col int))) *Matrix {
	lower := make([][]entry, n)
	upper := make([][]entry, n)
	for i := 0; i < n; i++ {
		gen(i, func(col int) {
			if col < 0 || col >= i {
				return
			}
			lower[i] = append(lower[i], entry{uint32(col), -1})
			upper[col] = append(upper[col], entry{uint32(i), -1})
		})
	}
	m := &Matrix{N: n, Offsets: make([]int64, n+1), Name: name}
	var nnz int64
	for i := 0; i < n; i++ {
		row := append(append([]entry{}, lower[i]...), upper[i]...)
		row = dedup(row)
		diag := float64(len(row)) + 1 // strict dominance
		row = append(row, entry{uint32(i), diag})
		sort.Slice(row, func(a, b int) bool { return row[a].col < row[b].col })
		for _, e := range row {
			m.Cols = append(m.Cols, e.col)
			m.Vals = append(m.Vals, e.val)
		}
		nnz += int64(len(row))
		m.Offsets[i+1] = nnz
	}
	return m
}

func dedup(row []entry) []entry {
	sort.Slice(row, func(a, b int) bool { return row[a].col < row[b].col })
	out := row[:0]
	for i, e := range row {
		if i == 0 || e.col != row[i-1].col {
			out = append(out, e)
		}
	}
	return out
}

// Stencil3D generates an atmosmodj-like matrix: a 7-point stencil on an
// nx*ny*nz grid.
func Stencil3D(nx, ny, nz int) *Matrix {
	n := nx * ny * nz
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	m := buildSPD("atmosmodj", n, func(row int, emit func(int)) {
		x := row % nx
		y := row / nx % ny
		z := row / (nx * ny)
		if x > 0 {
			emit(idx(x-1, y, z))
		}
		if y > 0 {
			emit(idx(x, y-1, z))
		}
		if z > 0 {
			emit(idx(x, y, z-1))
		}
	})
	return m
}

// Banded generates a bbmat-like matrix: a band of the given half-width
// with fill probability p inside the band.
func Banded(n, halfWidth int, p float64, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := buildSPD("bbmat", n, func(row int, emit func(int)) {
		lo := row - halfWidth
		if lo < 0 {
			lo = 0
		}
		emit(row - 1) // always the sub-diagonal, keeps the matrix connected
		for c := lo; c < row-1; c++ {
			if rng.Float64() < p {
				emit(c)
			}
		}
	})
	return m
}

// BlockStencil generates an nlpkkt80-like matrix: a 3-D stencil of b x b
// dense blocks (block coupling from the KKT structure).
func BlockStencil(nx, ny, nz, b int) *Matrix {
	cells := nx * ny * nz
	n := cells * b
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	m := buildSPD("nlpkkt80", n, func(row int, emit func(int)) {
		cell := row / b
		lane := row % b
		x := cell % nx
		y := cell / nx % ny
		z := cell / (nx * ny)
		// Intra-block coupling.
		for l := 0; l < lane; l++ {
			emit(cell*b + l)
		}
		// Stencil coupling on the same lane.
		if x > 0 {
			emit(idx(x-1, y, z)*b + lane)
		}
		if y > 0 {
			emit(idx(x, y-1, z)*b + lane)
		}
		if z > 0 {
			emit(idx(x, y, z-1)*b + lane)
		}
	})
	return m
}

// ProteinBlocks generates a pdb1HYS-like matrix: dense diagonal blocks
// (residues) with random long-range couplings (contacts).
func ProteinBlocks(nblocks, bsize, contacts int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	n := nblocks * bsize
	m := buildSPD("pdb1HYS", n, func(row int, emit func(int)) {
		blk := row / bsize
		// Dense inside the block.
		for c := blk * bsize; c < row; c++ {
			emit(c)
		}
		// Long-range contacts to random earlier blocks.
		for k := 0; k < contacts; k++ {
			if blk == 0 {
				break
			}
			tb := rng.Intn(blk)
			emit(tb*bsize + rng.Intn(bsize))
		}
	})
	return m
}
