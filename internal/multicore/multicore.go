// Package multicore composes independent single-core programs into one
// multi-programmed apps.App for the shared-LLC co-run experiments: job k
// is built at Cores=1, relocated into its own address-space slice
// (base + k·Stride), and scheduled on core k in its own barrier group,
// so the composed workloads free-run against each other and interact
// only through the shared LLC, the coherence directory, and the DRAM
// channel — exactly the contention regime the multicore subsystem
// exists to measure.
package multicore

import (
	"fmt"
	"strings"

	"rnrsim/internal/apps"
	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

// Stride is the address-space slice reserved per composed job. Every
// workload's footprint (inputs, metadata tables, stacks of synthetic
// bases) lives far below 2^38 bytes, and 64-bit line addresses leave
// room for 2^26 slices, so relocation by k·Stride can never collide.
const Stride mem.Addr = 1 << 38

// JobSpec names one program of a co-run: a workload and its input, as
// accepted by apps.Build.
type JobSpec struct {
	Workload string
	Input    string
}

func (j JobSpec) String() string { return j.Workload + "." + j.Input }

// ParseJob parses "workload.input" or "workload/input" into a JobSpec.
// The split happens at the earliest separator of either kind, so an
// input name containing the other separator ("pagerank/web.graph")
// stays intact; a separator in first or last position does not split.
func ParseJob(s string) (JobSpec, error) {
	i := -1
	for _, sep := range []string{".", "/"} {
		if j := strings.Index(s, sep); j > 0 && j < len(s)-1 && (i < 0 || j < i) {
			i = j
		}
	}
	if i < 0 {
		return JobSpec{}, fmt.Errorf("multicore: job %q not of the form workload.input", s)
	}
	return JobSpec{Workload: s[:i], Input: s[i+1:]}, nil
}

// Compose builds one App per job at Cores=1, relocates job k's address
// space by k·Stride, and merges them into a single N-core App with one
// barrier group per job. The composed App has no indirect resolver
// (domain prefetchers that need value inspection — DROPLET, IMP — are
// not supported for co-runs); its Check is the sum of the jobs' checks
// and its Iterations the maximum, since the jobs retire independently.
//
// Job 0 is not relocated, so a single-job composition is byte-identical
// to apps.BuildCores(w, in, s, 1) — the anchor for the differential
// tests that pin the multicore path to the single-core system.
func Compose(s apps.Scale, jobs []JobSpec) (*apps.App, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("multicore: empty job list")
	}
	names := make([]string, len(jobs))
	composed := &apps.App{
		Name:   "corun",
		Cores:  len(jobs),
		Traces: make([][]trace.Record, len(jobs)),
		Groups: make([][]int, len(jobs)),
	}
	for k, j := range jobs {
		app, err := apps.BuildCores(j.Workload, j.Input, s, 1)
		if err != nil {
			return nil, fmt.Errorf("multicore: job %d (%s): %w", k, j, err)
		}
		if len(app.Traces) != 1 {
			return nil, fmt.Errorf("multicore: job %d (%s): built %d traces, want 1", k, j, len(app.Traces))
		}
		delta := Stride * mem.Addr(k)
		composed.Traces[k] = relocate(app.Traces[0], delta)
		composed.Groups[k] = []int{k}
		for _, r := range app.Targets {
			r.Base += delta
			composed.Targets = append(composed.Targets, r)
		}
		composed.InputBytes += app.InputBytes
		composed.Check += app.Check
		if app.Iterations > composed.Iterations {
			composed.Iterations = app.Iterations
		}
		names[k] = j.String()
	}
	composed.Input = strings.Join(names, "+")
	return composed, nil
}

// relocate shifts every address-carrying record by delta. Loads and
// stores always carry an address; markers carry one exactly when it is
// nonzero (table bases, boundary-register bases — a bump allocator
// starting above the null page never hands out address zero, and all
// other markers emit Addr 0 by construction, see trace.Builder).
func relocate(recs []trace.Record, delta mem.Addr) []trace.Record {
	if delta == 0 {
		return recs
	}
	out := make([]trace.Record, len(recs))
	copy(out, recs)
	for i := range out {
		switch out[i].Kind {
		case trace.KindLoad, trace.KindStore:
			out[i].Addr += delta
		case trace.KindMarker:
			if out[i].Addr != 0 {
				out[i].Addr += delta
			}
		}
	}
	return out
}
