package multicore

import (
	"testing"

	"rnrsim/internal/apps"
	"rnrsim/internal/mem"
	"rnrsim/internal/trace"
)

func TestParseJob(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want JobSpec
		ok   bool
	}{
		{"pagerank.urand", JobSpec{"pagerank", "urand"}, true},
		{"spcg/bbmat", JobSpec{"spcg", "bbmat"}, true},
		{"pagerank", JobSpec{}, false},
		{".urand", JobSpec{}, false},
		{"pagerank.", JobSpec{}, false},
		// Separator-precedence regression: the split must happen at the
		// earliest separator of either kind. The old code tried "." before
		// "/" regardless of position, so "a/b.c" parsed as workload "a/b".
		{"a/b.c", JobSpec{"a", "b.c"}, true},
		{"a.b/c", JobSpec{"a", "b/c"}, true},
		{"a.b.c", JobSpec{"a", "b.c"}, true},
		{"a/b/c", JobSpec{"a", "b/c"}, true},
		{"/urand", JobSpec{}, false},
		{"pagerank/", JobSpec{}, false},
	} {
		got, err := ParseJob(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseJob(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestComposeSingleJobIsIdentity(t *testing.T) {
	solo, err := apps.BuildCores("pagerank", "urand", apps.ScaleTest, 1)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Compose(apps.ScaleTest, []JobSpec{{"pagerank", "urand"}})
	if err != nil {
		t.Fatal(err)
	}
	if co.Cores != 1 || len(co.Traces) != 1 {
		t.Fatalf("composed single job has %d cores / %d traces", co.Cores, len(co.Traces))
	}
	if len(co.Traces[0]) != len(solo.Traces[0]) {
		t.Fatalf("trace length %d != solo %d", len(co.Traces[0]), len(solo.Traces[0]))
	}
	for i := range co.Traces[0] {
		if co.Traces[0][i] != solo.Traces[0][i] {
			t.Fatalf("record %d differs: %+v != %+v", i, co.Traces[0][i], solo.Traces[0][i])
		}
	}
	if co.Check != solo.Check || co.Iterations != solo.Iterations {
		t.Fatalf("metadata differs: check %v/%v iters %d/%d",
			co.Check, solo.Check, co.Iterations, solo.Iterations)
	}
}

func TestComposeRelocatesDisjointSlices(t *testing.T) {
	co, err := Compose(apps.ScaleTest, []JobSpec{
		{"pagerank", "urand"}, {"spcg", "bbmat"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if co.Cores != 2 || len(co.Traces) != 2 || len(co.Groups) != 2 {
		t.Fatalf("shape: cores=%d traces=%d groups=%d", co.Cores, len(co.Traces), len(co.Groups))
	}
	for k, tr := range co.Traces {
		lo := Stride * mem.Addr(k)
		hi := lo + Stride
		for i, r := range tr {
			addr := r.Addr
			if addr == 0 {
				continue
			}
			if r.Kind == trace.KindExec {
				continue
			}
			if addr < lo || addr >= hi {
				t.Fatalf("core %d record %d addr %#x outside slice [%#x, %#x)",
					k, i, uint64(addr), uint64(lo), uint64(hi))
			}
		}
	}
	// Targets relocate with their jobs.
	seen := map[int]bool{}
	for _, r := range co.Targets {
		seen[int(r.Base/Stride)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("targets not spread across slices: %v", co.Targets)
	}
	// Barrier groups are singletons in job order.
	for k, g := range co.Groups {
		if len(g) != 1 || g[0] != k {
			t.Fatalf("group %d = %v, want [%d]", k, g, k)
		}
	}
	if co.Resolve != nil || co.MakeResolver != nil {
		t.Fatal("composed app must not carry an indirect resolver")
	}
}

func TestComposeRejectsUnknownJob(t *testing.T) {
	if _, err := Compose(apps.ScaleTest, []JobSpec{{"nosuch", "urand"}}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Compose(apps.ScaleTest, nil); err == nil {
		t.Fatal("empty job list accepted")
	}
}
