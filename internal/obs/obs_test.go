package obs

import (
	"strings"
	"testing"

	"rnrsim/internal/telemetry"
)

func checkInvariant(t *testing.T, r *Recorder) {
	t.Helper()
	r.CheckInvariants(func(msg string) { t.Errorf("invariant: %s", msg) })
}

// TestOutcomeClassification drives one record through each lifecycle
// and checks exactly one outcome per record plus the histogram feeds.
func TestOutcomeClassification(t *testing.T) {
	r := NewRecorder(Config{})
	v := r.View("l2.0")

	// Timely: issue @10, fill @40, demand hit @100.
	v.PrefetchIssued(0x1000, 10, 3)
	v.PrefetchFilled(0x1000, 40, false)
	v.PrefetchDemandHit(0x1000, 100)

	// Late: issue @10, demand merges @30, fill @60.
	v.PrefetchIssued(0x2000, 10, 4)
	v.PrefetchLateMerge(0x2000, 30, 20)
	v.PrefetchFilled(0x2000, 60, true)

	// Unused-evicted: issue, fill, evict.
	v.PrefetchIssued(0x3000, 10, 5)
	v.PrefetchFilled(0x3000, 50, false)
	v.PrefetchEvictedUnused(0x3000, 200)

	// Redundant: filtered without ever allocating.
	v.PrefetchRedundant(0x4000, 15)

	// Unused-at-end: issued and filled, closed by Finalize.
	v.PrefetchIssued(0x5000, 20, 6)
	v.PrefetchFilled(0x5000, 70, false)

	checkInvariant(t, r)
	r.Finalize(300)
	checkInvariant(t, r)

	got := r.Stats()
	want := Stats{
		Issued: 5, Timely: 1, Late: 1, UnusedEvicted: 1, UnusedAtEnd: 1,
		Redundant: 1, LateStallShaved: 20,
	}
	if got != want {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	if got.Issued != got.Closed() {
		t.Fatalf("issued %d != closed %d after finalize", got.Issued, got.Closed())
	}
	if r.OpenRecords() != 0 {
		t.Fatalf("%d open records after finalize", r.OpenRecords())
	}

	s := r.Summarize()
	// prefetch_to_use: one sample, 100-40 = 60 cycles.
	h := s.Histograms["prefetch_to_use_cycles"]
	if h.Count != 1 || h.Sum != 60 {
		t.Errorf("prefetch_to_use = %+v, want count 1 sum 60", h)
	}
	// fill_latency: four fills (30, 50, 40, 50 cycles).
	h = s.Histograms["fill_latency_cycles"]
	if h.Count != 4 || h.Sum != 30+50+40+50 {
		t.Errorf("fill_latency = %+v, want count 4 sum 170", h)
	}
	// mshr_at_issue: 3,4,5,6.
	h = s.Histograms["mshr_at_issue"]
	if h.Count != 4 || h.Sum != 18 {
		t.Errorf("mshr_at_issue = %+v, want count 4 sum 18", h)
	}
	if s.Lifecycle.Issued != 5 || s.Lifecycle.OpenAtEnd != 0 {
		t.Errorf("lifecycle section = %+v", s.Lifecycle)
	}
}

// TestForeignEventsIgnored: events for lines without an open record
// (prefetch children from the level above) must not corrupt the law.
func TestForeignEventsIgnored(t *testing.T) {
	r := NewRecorder(Config{})
	v := r.View("llc")
	v.PrefetchFilled(0x9000, 50, false)
	v.PrefetchDemandHit(0x9000, 60)
	v.PrefetchLateMerge(0x9000, 70, 5)
	v.PrefetchEvictedUnused(0x9000, 80)
	if got := r.Stats(); got != (Stats{}) {
		t.Fatalf("foreign events counted: %+v", got)
	}
	checkInvariant(t, r)
}

// TestDoubleIssueStaysConserved covers the defensive path: a second
// issue for a line with an open record closes the old one as redundant.
func TestDoubleIssueStaysConserved(t *testing.T) {
	r := NewRecorder(Config{})
	v := r.View("l2.0")
	v.PrefetchIssued(0x1000, 10, 0)
	v.PrefetchIssued(0x1000, 20, 1)
	checkInvariant(t, r)
	r.Finalize(100)
	got := r.Stats()
	if got.Issued != 2 || got.Redundant != 1 || got.UnusedAtEnd != 1 {
		t.Fatalf("stats = %+v", got)
	}
	checkInvariant(t, r)
}

// TestIterationDeltas checks per-iteration outcome counts are deltas
// between IterEnd marks, and hostile indices land in the overflow.
func TestIterationDeltas(t *testing.T) {
	r := NewRecorder(Config{MaxTrackedIterations: 8})
	v := r.View("l2.0")

	v.PrefetchIssued(0x1000, 5, 0)
	v.PrefetchFilled(0x1000, 20, false)
	v.PrefetchDemandHit(0x1000, 30)
	r.IterEnd(0, 100)

	v.PrefetchRedundant(0x2000, 110)
	v.PrefetchIssued(0x3000, 120, 1)
	v.PrefetchLateMerge(0x3000, 130, 10)
	v.PrefetchFilled(0x3000, 140, true)
	r.IterEnd(1, 200)

	r.IterEnd(-1, 210)  // hostile
	r.IterEnd(999, 220) // beyond cap

	r.Finalize(300)
	s := r.Summarize()
	if len(s.Lifecycle.Iterations) != 2 {
		t.Fatalf("iterations = %+v, want 2", s.Lifecycle.Iterations)
	}
	i0, i1 := s.Lifecycle.Iterations[0], s.Lifecycle.Iterations[1]
	if i0.Iter != 0 || i0.EndCycle != 100 || i0.Issued != 1 || i0.Timely != 1 || i0.Redundant != 0 {
		t.Errorf("iter 0 = %+v", i0)
	}
	if i1.Iter != 1 || i1.Issued != 2 || i1.Late != 1 || i1.Redundant != 1 || i1.Timely != 0 {
		t.Errorf("iter 1 = %+v", i1)
	}
	if s.Lifecycle.IterOverflow != 2 {
		t.Errorf("iter overflow = %d, want 2", s.Lifecycle.IterOverflow)
	}
}

// TestMirrorRegistry checks observations are duplicated into the
// mirror registry under obs.* names for cross-job /metrics exposition.
func TestMirrorRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	r := NewRecorder(Config{Mirror: reg})
	v := r.View("l2.0")
	v.PrefetchIssued(0x1000, 10, 7)
	v.PrefetchFilled(0x1000, 25, false)
	v.PrefetchDemandHit(0x1000, 40)

	hs := reg.Histograms()
	if len(hs) != 3 {
		t.Fatalf("mirror has %d histograms, want 3", len(hs))
	}
	for _, nh := range hs {
		if !strings.HasPrefix(nh.Name, "obs.") {
			t.Errorf("mirror name %q lacks obs. prefix", nh.Name)
		}
	}
	if got := reg.Histogram("obs.fill_latency_cycles").Count(); got != 1 {
		t.Errorf("mirror fill_latency count = %d, want 1", got)
	}
	if got := reg.Histogram("obs.mshr_at_issue").Sum(); got != 7 {
		t.Errorf("mirror mshr_at_issue sum = %d, want 7", got)
	}
}

// TestAttachDivergence checks the aggregate mean/max computation.
func TestAttachDivergence(t *testing.T) {
	s := &Summary{}
	s.AttachDivergence(nil)
	if s.Lifecycle.Divergence != nil {
		t.Fatal("empty attach created a section")
	}
	s.AttachDivergence([]WindowScoreJSON{
		{Core: 0, Window: 0, Score: 0.2},
		{Core: 0, Window: 1, Score: 0.6},
		{Core: 1, Window: 0, Score: 0.1},
	})
	d := s.Lifecycle.Divergence
	if d == nil || d.WindowsScored != 3 {
		t.Fatalf("divergence = %+v", d)
	}
	if d.MaxScore != 0.6 {
		t.Errorf("max = %v, want 0.6", d.MaxScore)
	}
	if mean := (0.2 + 0.6 + 0.1) / 3; d.MeanScore != mean {
		t.Errorf("mean = %v, want %v", d.MeanScore, mean)
	}
}
