// Package obs is the prefetch-lifecycle flight recorder: it attributes
// every locally-generated prefetch to exactly one outcome (timely hit,
// late, unused-evicted, unused-at-end, redundant), aggregates the
// latency structure into exponential histograms, and keys outcome
// counts to the workload's iteration markers. It composes with
// internal/telemetry (histograms are telemetry.Histogram instruments)
// rather than replacing it, and follows the same discipline: the
// disabled path is a nil pointer compare in the cache, and recording
// never feeds back into simulated behaviour, so architectural state
// hashes are identical with the recorder on or off.
//
// Wiring: the simulator builds one Recorder per run and attaches one
// CacheView per instrumented cache level (each view implements
// cache.LifecycleObserver structurally — obs does not import cache).
// IterEnd snapshots cumulative outcome totals at each iteration
// boundary; Finalize closes records still open when the run drains.
package obs

import (
	"fmt"

	"rnrsim/internal/mem"
	"rnrsim/internal/telemetry"
)

// Config enables and sizes a flight recorder. The zero value is a
// usable default (no mirror, 1<<16 iteration cap).
type Config struct {
	// Mirror, when non-nil, receives every histogram observation under
	// "obs."-prefixed names in addition to the recorder's own per-run
	// instruments. The serving layer passes its process-wide metrics
	// registry here so /metrics exposes Prometheus histograms
	// accumulated across jobs.
	Mirror *telemetry.Registry
	// MaxTrackedIterations bounds the per-iteration outcome table
	// against hostile iteration indices from fuzzed traces; 0 = 1<<16
	// (the same cap the simulator applies to its iteration snapshots).
	MaxTrackedIterations int
	// DivergenceMaxCompare caps the per-window sequence length the RnR
	// divergence probe compares (edit distance is quadratic); 0 = 512.
	DivergenceMaxCompare int
}

const (
	defaultMaxIterations = 1 << 16
	// DefaultDivergenceMaxCompare is the per-window comparison cap used
	// when Config leaves DivergenceMaxCompare zero.
	DefaultDivergenceMaxCompare = 512
)

// Stats are the recorder's monotone outcome counters. Every field is a
// uint64 counter so the audit layer's reflection-based monotone watcher
// covers them all. The conservation law — checked by CheckInvariants —
// is Issued == Timely+Late+UnusedEvicted+UnusedAtEnd+Redundant+open,
// where open is the number of records not yet closed.
type Stats struct {
	Issued        uint64 // lifecycle records opened (accepted + redundant)
	Timely        uint64 // demand hit the prefetched line after fill
	Late          uint64 // demand merged while the prefetch was in flight
	UnusedEvicted uint64 // filled, then evicted or invalidated unreferenced
	UnusedAtEnd   uint64 // filled, still resident and unreferenced at drain
	Redundant     uint64 // filtered, raced or merged away without a fetch

	// LateStallShaved accumulates, over all late prefetches, the cycles
	// each was already in flight when its demand arrived — the stall
	// the demand was spared relative to no prefetch at all.
	LateStallShaved uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Issued += other.Issued
	s.Timely += other.Timely
	s.Late += other.Late
	s.UnusedEvicted += other.UnusedEvicted
	s.UnusedAtEnd += other.UnusedAtEnd
	s.Redundant += other.Redundant
	s.LateStallShaved += other.LateStallShaved
}

// Closed returns the number of records attributed to a final outcome.
func (s Stats) Closed() uint64 {
	return s.Timely + s.Late + s.UnusedEvicted + s.UnusedAtEnd + s.Redundant
}

// record tracks one in-flight or resident-unused prefetch.
type record struct {
	issueAt   uint64
	fillAt    uint64
	headStart uint64 // in-flight cycles at demand merge (late records)
	filled    bool
	late      bool // a demand merged in flight; closes at fill
}

// Recorder is one run's flight recorder: a set of per-cache views plus
// the shared histograms and the per-iteration outcome table.
type Recorder struct {
	cfg     Config
	maxIter int
	views   []*CacheView

	// Histograms (paper §V evaluates timeliness; these expose its
	// structure): prefetch-to-use distance in cycles (fill → demand
	// hit), fill latency in cycles (issue → fill), and MSHR occupancy
	// at issue.
	hPrefetchToUse *telemetry.Histogram
	hFillLatency   *telemetry.Histogram
	hMSHRAtIssue   *telemetry.Histogram
	mPrefetchToUse *telemetry.Histogram // mirrors (nil without Config.Mirror)
	mFillLatency   *telemetry.Histogram
	mMSHRAtIssue   *telemetry.Histogram

	// iterMarks[i] holds the cumulative outcome totals at the close of
	// iteration i; per-iteration deltas are derived at export time.
	iterMarks    []iterMark
	iterOverflow uint64 // IterEnd calls beyond the tracking cap
}

type iterMark struct {
	iter  int
	cycle uint64
	cum   Stats
	seen  bool
}

// NewRecorder builds an enabled flight recorder from cfg.
func NewRecorder(cfg Config) *Recorder {
	if cfg.MaxTrackedIterations <= 0 {
		cfg.MaxTrackedIterations = defaultMaxIterations
	}
	if cfg.DivergenceMaxCompare <= 0 {
		cfg.DivergenceMaxCompare = DefaultDivergenceMaxCompare
	}
	r := &Recorder{
		cfg:            cfg,
		maxIter:        cfg.MaxTrackedIterations,
		hPrefetchToUse: &telemetry.Histogram{},
		hFillLatency:   &telemetry.Histogram{},
		hMSHRAtIssue:   &telemetry.Histogram{},
	}
	if m := cfg.Mirror; m != nil {
		r.mPrefetchToUse = m.Histogram("obs.prefetch_to_use_cycles")
		r.mFillLatency = m.Histogram("obs.fill_latency_cycles")
		r.mMSHRAtIssue = m.Histogram("obs.mshr_at_issue")
	}
	return r
}

// Config returns the recorder's (defaulted) configuration.
func (r *Recorder) Config() Config { return r.cfg }

// View creates and registers the lifecycle observer for one cache
// level. name labels the level in invariant-violation messages
// (e.g. "l2.0").
func (r *Recorder) View(name string) *CacheView {
	v := &CacheView{rec: r, name: name, open: make(map[mem.Addr]record)}
	r.views = append(r.views, v)
	return v
}

// Stats returns the outcome totals summed over every view.
func (r *Recorder) Stats() Stats {
	var s Stats
	for _, v := range r.views {
		s.Add(v.stats)
	}
	return s
}

// OpenRecords returns the number of not-yet-closed records across all
// views (0 after Finalize).
func (r *Recorder) OpenRecords() int {
	n := 0
	for _, v := range r.views {
		n += len(v.open)
	}
	return n
}

// IterEnd snapshots the cumulative outcome totals at the close of
// iteration iter. Indices outside [0, MaxTrackedIterations) are counted
// in the overflow total instead of growing the table (fuzzed traces
// carry hostile indices).
func (r *Recorder) IterEnd(iter int, cycle uint64) {
	if iter < 0 || iter >= r.maxIter {
		r.iterOverflow++
		return
	}
	for len(r.iterMarks) <= iter {
		r.iterMarks = append(r.iterMarks, iterMark{})
	}
	r.iterMarks[iter] = iterMark{iter: iter, cycle: cycle, cum: r.Stats(), seen: true}
}

// Finalize closes every record still open once the run has drained:
// filled lines still resident and unreferenced become unused-at-end, as
// do records whose fill never completed (possible only on aborted runs
// — except late-marked ones, which close as late even if the run was
// cut before their fill). Idempotent.
func (r *Recorder) Finalize(cycle uint64) {
	for _, v := range r.views {
		for line, rec := range v.open {
			delete(v.open, line)
			if rec.late {
				v.stats.Late++
				v.stats.LateStallShaved += rec.headStart
			} else {
				v.stats.UnusedAtEnd++
			}
		}
	}
}

// CheckInvariants reports the flight recorder's conservation law in the
// audit layer's report-callback style: every opened record is closed
// with exactly one outcome (plus, before Finalize, still-open ones).
func (r *Recorder) CheckInvariants(report func(string)) {
	for _, v := range r.views {
		issued, closed, open := v.stats.Issued, v.stats.Closed(), uint64(len(v.open))
		if issued != closed+open {
			report(fmt.Sprintf(
				"obs[%s]: issued %d != closed %d + open %d (each prefetch must have exactly one outcome)",
				v.name, issued, closed, open))
		}
	}
}

// CacheView is the lifecycle observer for one cache level. Its method
// set matches cache.LifecycleObserver; the cache fires events and the
// view owns classification. Single-goroutine like the cache itself.
type CacheView struct {
	rec   *Recorder
	name  string
	open  map[mem.Addr]record
	stats Stats
}

// Name returns the level label given to Recorder.View.
func (v *CacheView) Name() string { return v.name }

// Stats returns this view's outcome totals.
func (v *CacheView) Stats() Stats { return v.stats }

// PrefetchIssued opens a lifecycle record. A still-open record for the
// same line should be impossible (the cache filters against residents
// and in-flight MSHRs); if one appears it is closed as redundant so the
// conservation law keeps holding.
func (v *CacheView) PrefetchIssued(line mem.Addr, cycle uint64, mshrOccupancy int) {
	if _, ok := v.open[line]; ok {
		v.stats.Redundant++
	}
	v.open[line] = record{issueAt: cycle}
	v.stats.Issued++
	v.rec.hMSHRAtIssue.Observe(uint64(mshrOccupancy))
	v.rec.mMSHRAtIssue.Observe(uint64(mshrOccupancy))
}

// PrefetchRedundant records a prefetch that was dropped or absorbed
// without fetching: issued and closed in the same instant.
func (v *CacheView) PrefetchRedundant(line mem.Addr, cycle uint64) {
	v.stats.Issued++
	v.stats.Redundant++
}

// PrefetchLateMerge marks the open record late. The outcome counters
// move only when the record closes (at fill, normally) so that the
// conservation law — issued == closed + open — holds at every instant,
// not just at rest; the auditor sweeps it mid-run.
func (v *CacheView) PrefetchLateMerge(line mem.Addr, cycle uint64, headStart uint64) {
	r, ok := v.open[line]
	if !ok || r.late {
		return // not a record of ours (e.g. a prefetch child from above)
	}
	r.late = true
	r.headStart = headStart
	v.open[line] = r
}

// PrefetchFilled observes the fill latency; late records close here,
// timely candidates stay open until demand hit or eviction.
func (v *CacheView) PrefetchFilled(line mem.Addr, cycle uint64, demanded bool) {
	r, ok := v.open[line]
	if !ok {
		return
	}
	v.rec.hFillLatency.Observe(cycle - r.issueAt)
	v.rec.mFillLatency.Observe(cycle - r.issueAt)
	if r.late {
		delete(v.open, line)
		v.stats.Late++
		v.stats.LateStallShaved += r.headStart
		return
	}
	r.filled = true
	r.fillAt = cycle
	v.open[line] = r
}

// PrefetchDemandHit closes a filled record as timely and observes the
// prefetch-to-use distance (fill → first demand).
func (v *CacheView) PrefetchDemandHit(line mem.Addr, cycle uint64) {
	r, ok := v.open[line]
	if !ok || !r.filled {
		return
	}
	delete(v.open, line)
	v.stats.Timely++
	v.rec.hPrefetchToUse.Observe(cycle - r.fillAt)
	v.rec.mPrefetchToUse.Observe(cycle - r.fillAt)
}

// PrefetchEvictedUnused closes a filled record that left the cache
// unreferenced (LRU eviction or context-switch invalidation).
func (v *CacheView) PrefetchEvictedUnused(line mem.Addr, cycle uint64) {
	r, ok := v.open[line]
	if !ok || !r.filled {
		return
	}
	delete(v.open, line)
	v.stats.UnusedEvicted++
}
