package obs

import "rnrsim/internal/telemetry"

// LifecycleJSON is the `lifecycle` section of the rnrsim.v1 envelope:
// run-total outcome attribution plus the per-iteration breakdown.
type LifecycleJSON struct {
	Issued          uint64 `json:"issued"`
	Timely          uint64 `json:"timely"`
	Late            uint64 `json:"late"`
	UnusedEvicted   uint64 `json:"unused_evicted"`
	UnusedAtEnd     uint64 `json:"unused_at_end"`
	Redundant       uint64 `json:"redundant"`
	LateStallShaved uint64 `json:"late_stall_shaved"`
	// OpenAtEnd is nonzero only when the summary was taken without
	// Finalize (aborted run); the audit invariant tolerates it.
	OpenAtEnd int `json:"open_at_end,omitempty"`
	// IterOverflow counts IterEnd markers beyond the tracking cap.
	IterOverflow uint64 `json:"iter_overflow,omitempty"`

	Iterations []IterOutcomesJSON `json:"iterations,omitempty"`
	Divergence *DivergenceJSON    `json:"divergence,omitempty"`
}

// IterOutcomesJSON is one iteration's outcome delta (counts attributed
// between the previous IterEnd marker and this one).
type IterOutcomesJSON struct {
	Iter          int    `json:"iter"`
	EndCycle      uint64 `json:"end_cycle"`
	Issued        uint64 `json:"issued"`
	Timely        uint64 `json:"timely"`
	Late          uint64 `json:"late"`
	UnusedEvicted uint64 `json:"unused_evicted"`
	Redundant     uint64 `json:"redundant"`
}

// DivergenceJSON summarises the RnR divergence probes: how far the
// replayed miss sequence drifted from observed misses, per window and
// aggregated. Score 0 is a perfect replay; 1 means nothing matched.
type DivergenceJSON struct {
	WindowsScored uint64            `json:"windows_scored"`
	MeanScore     float64           `json:"mean_score"`
	MaxScore      float64           `json:"max_score"`
	Windows       []WindowScoreJSON `json:"windows,omitempty"`
}

// WindowScoreJSON is one replay window's divergence measurement on one
// core's engine.
type WindowScoreJSON struct {
	Core         int     `json:"core"`
	Window       int     `json:"window"`
	Predicted    int     `json:"predicted"`
	Observed     int     `json:"observed"`
	EditDistance int     `json:"edit_distance"`
	Score        float64 `json:"score"`
}

// Summary is everything the flight recorder exports for one run,
// attached to sim.Result and rendered into the envelope's `lifecycle`
// and `histograms` sections.
type Summary struct {
	Lifecycle  LifecycleJSON
	Histograms map[string]telemetry.HistogramJSON
}

// Summarize builds the export view. Call after Finalize for a drained
// run; divergence (owned by the rnr package) is attached by the caller
// via AttachDivergence.
func (r *Recorder) Summarize() *Summary {
	total := r.Stats()
	lc := LifecycleJSON{
		Issued:          total.Issued,
		Timely:          total.Timely,
		Late:            total.Late,
		UnusedEvicted:   total.UnusedEvicted,
		UnusedAtEnd:     total.UnusedAtEnd,
		Redundant:       total.Redundant,
		LateStallShaved: total.LateStallShaved,
		OpenAtEnd:       r.OpenRecords(),
		IterOverflow:    r.iterOverflow,
	}
	var prev Stats
	for _, m := range r.iterMarks {
		if !m.seen {
			continue
		}
		d := m.cum
		lc.Iterations = append(lc.Iterations, IterOutcomesJSON{
			Iter:          m.iter,
			EndCycle:      m.cycle,
			Issued:        d.Issued - prev.Issued,
			Timely:        d.Timely - prev.Timely,
			Late:          d.Late - prev.Late,
			UnusedEvicted: d.UnusedEvicted - prev.UnusedEvicted,
			Redundant:     d.Redundant - prev.Redundant,
		})
		prev = d
	}
	return &Summary{
		Lifecycle: lc,
		Histograms: map[string]telemetry.HistogramJSON{
			"prefetch_to_use_cycles": r.hPrefetchToUse.JSON(),
			"fill_latency_cycles":    r.hFillLatency.JSON(),
			"mshr_at_issue":          r.hMSHRAtIssue.JSON(),
		},
	}
}

// AttachDivergence sets the summary's divergence section from
// per-window scores (already labelled with their core), computing the
// aggregate mean and max.
func (s *Summary) AttachDivergence(windows []WindowScoreJSON) {
	if len(windows) == 0 {
		return
	}
	d := &DivergenceJSON{WindowsScored: uint64(len(windows)), Windows: windows}
	var sum float64
	for _, w := range windows {
		sum += w.Score
		if w.Score > d.MaxScore {
			d.MaxScore = w.Score
		}
	}
	d.MeanScore = sum / float64(len(windows))
	s.Lifecycle.Divergence = d
}
