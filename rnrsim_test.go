package rnrsim_test

import (
	"testing"

	"rnrsim"
)

// The facade tests double as executable documentation: everything the
// README shows must work exactly as written.

func TestQuickstartFlow(t *testing.T) {
	app, err := rnrsim.BuildWorkload("pagerank", "urand", rnrsim.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "pagerank" || app.Input != "urand" || app.Cores != 4 {
		t.Fatalf("unexpected workload identity: %+v", app)
	}

	base, err := rnrsim.Simulate(rnrsim.TestMachine(), app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := rnrsim.TestMachine()
	cfg.Prefetcher = rnrsim.RnR
	res, err := rnrsim.Simulate(cfg, app)
	if err != nil {
		t.Fatal(err)
	}

	if res.RnR.RecordedEntries == 0 || res.RnR.Prefetches == 0 {
		t.Fatalf("RnR inactive: %+v", res.RnR)
	}
	if acc := res.Accuracy(); acc < 0.8 {
		t.Errorf("accuracy %.2f, want the paper's >0.8 regime", acc)
	}
	if res.L2MPKI() >= base.L2MPKI() {
		t.Errorf("RnR did not reduce MPKI: %.1f vs %.1f", res.L2MPKI(), base.L2MPKI())
	}
	if sp := res.ComposedSpeedup(base, 100); sp <= 1.0 {
		t.Errorf("composed speedup %.2f, want > 1", sp)
	}
}

func TestWorkloadCatalog(t *testing.T) {
	if len(rnrsim.Workloads) != 3 {
		t.Fatalf("workloads = %v", rnrsim.Workloads)
	}
	for _, w := range rnrsim.Workloads {
		inputs := rnrsim.InputsFor(w)
		if len(inputs) != 4 {
			t.Errorf("%s has %d inputs, want 4", w, len(inputs))
		}
	}
	if _, err := rnrsim.BuildWorkload("nope", "urand", rnrsim.ScaleTest); err == nil {
		t.Error("BuildWorkload accepted unknown workload")
	}
}

func TestMachineConfigs(t *testing.T) {
	paper := rnrsim.PaperMachine()
	if paper.L2.SizeBytes != 256*1024 || paper.LLC.SizeBytes != 8*1024*1024 {
		t.Errorf("paper machine deviates from Table II: %+v", paper)
	}
	scaled := rnrsim.ScaledMachine()
	if scaled.L2.SizeBytes >= paper.L2.SizeBytes {
		t.Error("scaled machine not smaller than the paper machine")
	}
	tst := rnrsim.TestMachine()
	if tst.L2.SizeBytes >= scaled.L2.SizeBytes {
		t.Error("test machine not smaller than the scaled machine")
	}
}

func TestHardwareBudgetFacade(t *testing.T) {
	b := rnrsim.HardwareBudget()
	if b.TotalBytes() >= 1024 {
		t.Errorf("budget %.1f B, paper requires < 1 KB/core", b.TotalBytes())
	}
	if b.SavedBytes() <= 0 {
		t.Error("no context-switch state accounted")
	}
}

func TestTimingControlAblationFacade(t *testing.T) {
	app, err := rnrsim.BuildWorkload("pagerank", "urand", rnrsim.ScaleTest)
	if err != nil {
		t.Fatal(err)
	}
	cycles := map[rnrsim.TimingControl]uint64{}
	for _, ctl := range []rnrsim.TimingControl{rnrsim.NoControl, rnrsim.WindowPaceControl} {
		cfg := rnrsim.TestMachine()
		cfg.Prefetcher = rnrsim.RnR
		cfg.RnRControl = ctl
		res, err := rnrsim.Simulate(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		cycles[ctl] = res.Cycles
	}
	if cycles[rnrsim.WindowPaceControl] >= cycles[rnrsim.NoControl] {
		t.Errorf("window+pace (%d cycles) not faster than uncontrolled replay (%d)",
			cycles[rnrsim.WindowPaceControl], cycles[rnrsim.NoControl])
	}
}
