// HyperANF walkthrough: approximates a graph's neighbourhood function
// with real HyperLogLog sketches while simulating the edge-centric
// kernel's memory behaviour, then compares RnR against the graph-domain
// DROPLET prefetcher — the paper's closest competitor on this workload.
//
//	go run ./examples/hyperanf
package main

import (
	"flag"
	"fmt"
	"log"

	"rnrsim"
)

func main() {
	input := flag.String("input", "com-orkut", "graph: urand, amazon, com-orkut, roadUSA")
	flag.Parse()

	app, err := rnrsim.BuildWorkload("hyperanf", *input, rnrsim.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HyperANF on %s: estimated neighbourhood function after %d rounds: %.0f\n\n",
		*input, app.Iterations, app.Check)

	base, err := rnrsim.Simulate(rnrsim.TestMachine(), app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %9s %9s %8s %8s\n", "design", "coverage", "accuracy", "L2 MPKI", "speedup")
	fmt.Printf("%-10s %9s %9s %8.1f %8s\n", "baseline", "-", "-", base.L2MPKI(), "1.00x")
	for _, pf := range []rnrsim.Prefetcher{rnrsim.Droplet, rnrsim.RnR, rnrsim.RnRCombined} {
		cfg := rnrsim.TestMachine()
		cfg.Prefetcher = pf
		res, err := rnrsim.Simulate(cfg, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.0f%% %8.0f%% %8.1f %7.2fx\n",
			pf, res.Coverage(base)*100, res.Accuracy()*100, res.L2MPKI(),
			res.ComposedSpeedup(base, 100))
	}
	fmt.Println("\nDROPLET must wait for edge data to return before it can compute")
	fmt.Println("vertex addresses; RnR replays the recorded sketch-miss sequence")
	fmt.Println("with no address-generation dependency (paper §VII-A.1).")
}
