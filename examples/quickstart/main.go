// Quickstart: build one workload, run it with and without the RnR
// prefetcher, and print the headline comparison. Uses the tiny test-scale
// inputs so it finishes in seconds.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rnrsim"
)

func main() {
	// PageRank on the uniform-random graph: the paper's hardest input for
	// conventional prefetchers (no spatial or temporal structure at all),
	// and therefore the clearest showcase for record-and-replay.
	app, err := rnrsim.BuildWorkload("pagerank", "urand", rnrsim.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s/%s: %d SPMD cores, %d trace records\n",
		app.Name, app.Input, app.Cores, app.Records())

	// The no-prefetcher baseline.
	base, err := rnrsim.Simulate(rnrsim.TestMachine(), app)
	if err != nil {
		log.Fatal(err)
	}

	// The same machine with the RnR engine attached to each private L2.
	cfg := rnrsim.TestMachine()
	cfg.Prefetcher = rnrsim.RnR
	res, err := rnrsim.Simulate(cfg, app)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline: %d cycles, IPC %.3f, L2 MPKI %.1f\n",
		base.Cycles, base.IPC(), base.L2MPKI())
	fmt.Printf("with RnR: %d cycles, IPC %.3f, L2 MPKI %.1f\n",
		res.Cycles, res.IPC(), res.L2MPKI())
	fmt.Printf("RnR recorded %d misses, replayed %d prefetches\n",
		res.RnR.RecordedEntries, res.RnR.Prefetches)
	fmt.Printf("accuracy %.0f%%, coverage %.0f%%, speedup over 100 iterations: %.2fx\n",
		res.Accuracy()*100, res.Coverage(base)*100, res.ComposedSpeedup(base, 100))
}
