// spCG walkthrough: solves a real SPD system with conjugate gradient while
// simulating the kernel's memory behaviour, then demonstrates the RnR
// window-size trade-off of the paper's Fig. 14 on the SpMV gather.
//
//	go run ./examples/spcg
//	go run ./examples/spcg -input pdb1HYS
package main

import (
	"flag"
	"fmt"
	"log"

	"rnrsim"
)

func main() {
	input := flag.String("input", "bbmat", "matrix: atmosmodj, bbmat, nlpkkt80, pdb1HYS")
	flag.Parse()

	app, err := rnrsim.BuildWorkload("spcg", *input, rnrsim.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("spCG on %s: CG converged to residual %.2e\n\n", *input, app.Check)

	base, err := rnrsim.Simulate(rnrsim.TestMachine(), app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %d cycles, L2 MPKI %.1f\n\n", base.Cycles, base.L2MPKI())

	// Fig. 14: sweep the RnR window size. The window is the granularity at
	// which the replay engine re-synchronises with the program; too small
	// and the division table bloats while prefetching loses its lead.
	fmt.Printf("%-14s %8s %10s %12s\n", "window (lines)", "speedup", "accuracy", "metadata KB")
	for _, win := range []uint64{16, 64, 256, 1024} {
		cfg := rnrsim.TestMachine()
		cfg.Prefetcher = rnrsim.RnR
		cfg.RnRWindow = win
		res, err := rnrsim.Simulate(cfg, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14d %7.2fx %9.0f%% %12.1f\n",
			win, res.ComposedSpeedup(base, 100), res.Accuracy()*100,
			float64(res.RnR.MetadataBytes())/1024)
	}

	// The replay timing-control ablation (Fig. 10) on the same kernel.
	fmt.Printf("\n%-14s %8s %9s\n", "control", "speedup", "accuracy")
	for _, ctl := range []rnrsim.TimingControl{
		rnrsim.NoControl, rnrsim.WindowControl, rnrsim.WindowPaceControl,
	} {
		cfg := rnrsim.TestMachine()
		cfg.Prefetcher = rnrsim.RnR
		cfg.RnRControl = ctl
		res, err := rnrsim.Simulate(cfg, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s %7.2fx %8.0f%%\n", ctl, res.ComposedSpeedup(base, 100), res.Accuracy()*100)
	}
}
