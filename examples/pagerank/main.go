// PageRank prefetcher shoot-out: runs the paper's Fig. 1 style comparison
// on one graph — every prefetcher class against the baseline — and prints
// coverage/accuracy/speedup per design.
//
//	go run ./examples/pagerank            # amazon-style community graph
//	go run ./examples/pagerank -input urand
package main

import (
	"flag"
	"fmt"
	"log"

	"rnrsim"
)

func main() {
	input := flag.String("input", "amazon", "graph: urand, amazon, com-orkut, roadUSA")
	flag.Parse()

	app, err := rnrsim.BuildWorkload("pagerank", *input, rnrsim.ScaleTest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PageRank on %s (rank mass check: %.4f, want ~1.0)\n\n", *input, app.Check)

	base, err := rnrsim.Simulate(rnrsim.TestMachine(), app)
	if err != nil {
		log.Fatal(err)
	}

	// The Fig. 1 line-up: one prefetcher per class.
	lineup := []rnrsim.Prefetcher{
		rnrsim.NextLine, // regular-pattern
		rnrsim.Bingo,    // spatial
		rnrsim.MISB,     // temporal (off-chip metadata)
		rnrsim.SteMS,    // spatio-temporal
		rnrsim.Droplet,  // graph-domain
		rnrsim.RnR,      // this paper
	}
	fmt.Printf("%-10s %9s %9s %8s\n", "design", "coverage", "accuracy", "speedup")
	for _, pf := range lineup {
		cfg := rnrsim.TestMachine()
		cfg.Prefetcher = pf
		res, err := rnrsim.Simulate(cfg, app)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.0f%% %8.0f%% %7.2fx\n",
			pf, res.Coverage(base)*100, res.Accuracy()*100,
			res.ComposedSpeedup(base, 100))
	}
	fmt.Println("\npaper's Fig. 1: RnR sits alone in the top-right corner —")
	fmt.Println("high coverage AND high accuracy — because it replays the exact")
	fmt.Println("recorded miss sequence instead of predicting it.")
}
