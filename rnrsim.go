// Package rnrsim is a from-scratch reproduction of "RnR: A
// Software-Assisted Record-and-Replay Hardware Prefetcher" (MICRO 2020):
// a trace-driven multicore cache/DRAM simulator, the RnR prefetcher and
// the baselines it is compared against, the paper's three workloads
// (PageRank, HyperANF, spCG) on synthetic stand-ins for its inputs, and
// the harness that regenerates every table and figure of the evaluation.
//
// This package is the public facade. A minimal session:
//
//	app, _ := rnrsim.BuildWorkload("pagerank", "urand", rnrsim.ScaleTest)
//	base, _ := rnrsim.Simulate(rnrsim.ScaledMachine(), app)
//	cfg := rnrsim.ScaledMachine()
//	cfg.Prefetcher = rnrsim.RnR
//	res, _ := rnrsim.Simulate(cfg, app)
//	fmt.Printf("speedup %.2fx\n", res.ComposedSpeedup(base, 100))
//
// The heavy machinery lives in internal/ packages; everything a user
// needs — workload construction, machine configuration, simulation and
// the per-figure experiment runners — is re-exported here.
package rnrsim

import (
	"rnrsim/internal/apps"
	"rnrsim/internal/bench"
	"rnrsim/internal/rnr"
	"rnrsim/internal/sim"
)

// Workload is a built application instance: per-core traces plus layout
// metadata. Construct with BuildWorkload.
type Workload = apps.App

// Scale selects input sizes (ScaleTest, ScaleBench, ScaleLarge).
type Scale = apps.Scale

// Input scales.
const (
	ScaleTest  = apps.ScaleTest
	ScaleBench = apps.ScaleBench
	ScaleLarge = apps.ScaleLarge
)

// MachineConfig describes the simulated machine.
type MachineConfig = sim.Config

// Result is the outcome of one simulation with the paper's derived
// metrics (speedup, MPKI, coverage, accuracy, traffic, timeliness).
type Result = sim.Result

// Prefetcher selects the hardware prefetcher configuration.
type Prefetcher = sim.PrefetcherKind

// The available prefetcher configurations.
const (
	NoPrefetcher = sim.PFNone
	NextLine     = sim.PFNextLine
	Stream       = sim.PFStream
	GHB          = sim.PFGHB
	MISB         = sim.PFMISB
	Bingo        = sim.PFBingo
	SteMS        = sim.PFSteMS
	Droplet      = sim.PFDroplet
	IMP          = sim.PFIMP
	BestOffset   = sim.PFBestOffset
	Domino       = sim.PFDomino
	RnR          = sim.PFRnR
	RnRCombined  = sim.PFRnRCombined
)

// TimingControl selects RnR's replay pacing (the Fig. 10/11 ablation).
type TimingControl = rnr.TimingControl

// Replay timing-control modes.
const (
	NoControl         = rnr.NoControl
	WindowControl     = rnr.WindowControl
	WindowPaceControl = rnr.WindowPaceControl
)

// Workloads lists the paper's applications: pagerank, hyperanf, spcg.
var Workloads = apps.Workloads

// InputsFor returns the paper's input names for a workload.
func InputsFor(workload string) []string { return apps.InputsFor(workload) }

// BuildWorkload constructs a workload ("pagerank", "hyperanf", "spcg") on
// one of the paper's inputs (e.g. "urand", "amazon", "bbmat") at the
// given scale. The build runs the real algorithm (actual PageRank
// values, HyperLogLog sketches, a converging CG solve) while emitting the
// kernel's memory trace.
func BuildWorkload(workload, input string, scale Scale) (*Workload, error) {
	return apps.Build(workload, input, scale)
}

// PaperMachine returns the paper's Table II configuration at full size.
func PaperMachine() MachineConfig { return sim.Baseline() }

// ScaledMachine returns the laptop-scale machine the experiment suite
// uses, with capacities scaled to the ScaleBench inputs.
func ScaledMachine() MachineConfig { return sim.Scaled() }

// TestMachine returns a miniature machine paired with the ScaleTest
// inputs — the right choice for quick demos and unit tests.
func TestMachine() MachineConfig { return sim.Test() }

// Simulate runs the workload on the configured machine to completion.
func Simulate(cfg MachineConfig, app *Workload) (*Result, error) {
	return sim.Run(cfg, app)
}

// Experiments is the per-figure/table experiment harness.
type Experiments = bench.Suite

// NewExperiments returns a harness that memoises workloads and runs.
func NewExperiments(scale Scale) *Experiments { return bench.NewSuite(scale) }

// ExperimentTable is one rendered table/figure.
type ExperimentTable = bench.Table

// HardwareBudget itemises RnR's per-core hardware cost (§VII-B).
func HardwareBudget() rnr.HardwareBudget { return rnr.Budget() }
