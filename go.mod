module rnrsim

go 1.22
