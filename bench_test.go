package rnrsim_test

// One testing.B benchmark per table and figure of the paper's evaluation.
// Each benchmark regenerates its artefact from scratch (workload build +
// all simulations); a single iteration takes seconds, so `go test -bench`
// settles at N=1 per benchmark. Run the full-scale regeneration with
// cmd/experiments instead; these benches exist so `go test -bench=.`
// exercises every experiment end to end and reports its cost.

import (
	"testing"

	"rnrsim"
	"rnrsim/internal/apps"
	"rnrsim/internal/bench"
	"rnrsim/internal/multicore"
	"rnrsim/internal/obs"
	"rnrsim/internal/sim"
)

func newSuite() *bench.Suite {
	s := bench.NewSuite(apps.ScaleTest)
	s.Config = sim.Test()
	return s
}

func runExperiment(b *testing.B, f func(*bench.Suite) *bench.Table) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := newSuite()
		t := f(s)
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.ID)
		}
	}
}

func BenchmarkFig1(b *testing.B)  { runExperiment(b, (*bench.Suite).Fig1) }
func BenchmarkFig6(b *testing.B)  { runExperiment(b, (*bench.Suite).Fig6) }
func BenchmarkFig7(b *testing.B)  { runExperiment(b, (*bench.Suite).Fig7) }
func BenchmarkFig8(b *testing.B)  { runExperiment(b, (*bench.Suite).Fig8) }
func BenchmarkFig9(b *testing.B)  { runExperiment(b, (*bench.Suite).Fig9) }
func BenchmarkFig10(b *testing.B) { runExperiment(b, (*bench.Suite).Fig10) }
func BenchmarkFig11(b *testing.B) { runExperiment(b, (*bench.Suite).Fig11) }
func BenchmarkFig12(b *testing.B) { runExperiment(b, (*bench.Suite).Fig12) }
func BenchmarkFig13(b *testing.B) { runExperiment(b, (*bench.Suite).Fig13) }
func BenchmarkFig14(b *testing.B) { runExperiment(b, (*bench.Suite).Fig14) }

func BenchmarkTableII(b *testing.B)  { runExperiment(b, (*bench.Suite).TableII) }
func BenchmarkTableIII(b *testing.B) { runExperiment(b, (*bench.Suite).TableIII) }
func BenchmarkTableIV(b *testing.B)  { runExperiment(b, (*bench.Suite).TableIV) }

func BenchmarkRecordOverhead(b *testing.B) { runExperiment(b, (*bench.Suite).RecordOverhead) }
func BenchmarkHardwareOverhead(b *testing.B) {
	runExperiment(b, (*bench.Suite).HardwareOverhead)
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles/sec)
// on the PageRank/urand baseline — useful when tuning the simulator. The
// /obs variant attaches the prefetch-lifecycle flight recorder so its
// overhead is tracked in the perf trajectory next to the base number;
// the base variant's nil Obs is the parity gate (one pointer compare).
//
// The sub-benchmarks split along two axes:
//
//   - engine: the default event-driven scheduler vs /stepped
//     (ForceCycleStepped), so the perf trajectory records both and CI can
//     gate on their ratio.
//   - regime: base is dense (PageRank keeps some component busy ~90% of
//     cycles, so event-driven wins only by per-component tick gating);
//     /ctxswitch injects the paper's §IV-C descheduling with a realistic
//     out:in ratio, the idle-heavy regime next-event scheduling exists
//     for, where the event engine leaps whole descheduled windows.
func BenchmarkSimulatorThroughput(b *testing.B) {
	app, err := rnrsim.BuildWorkload("pagerank", "urand", rnrsim.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, mutate func(*rnrsim.MachineConfig)) {
		b.ResetTimer()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cfg := rnrsim.TestMachine()
			if mutate != nil {
				mutate(&cfg)
			}
			r, err := rnrsim.Simulate(cfg, app)
			if err != nil {
				b.Fatal(err)
			}
			cycles += r.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	ctxHeavy := func(cfg *rnrsim.MachineConfig) {
		cfg.CtxSwitch = sim.CtxSwitchConfig{Period: 20_000, Duration: 1_000_000}
	}
	b.Run("base", func(b *testing.B) { run(b, nil) })
	b.Run("obs", func(b *testing.B) {
		run(b, func(cfg *rnrsim.MachineConfig) { cfg.Obs = &obs.Config{} })
	})
	b.Run("stepped", func(b *testing.B) {
		run(b, func(cfg *rnrsim.MachineConfig) { cfg.ForceCycleStepped = true })
	})
	b.Run("ctxswitch", func(b *testing.B) { run(b, ctxHeavy) })
	b.Run("ctxswitch-stepped", func(b *testing.B) {
		run(b, func(cfg *rnrsim.MachineConfig) {
			ctxHeavy(cfg)
			cfg.ForceCycleStepped = true
		})
	})

	// The /2core pair measures the full multicore machine — a composed
	// PageRank+spCG co-run behind the coherence directory, a 2-bank LLC
	// and the cross-core prefetcher — on both engines, so the perf
	// trajectory tracks what the coherent path costs relative to /base.
	coApp, err := multicore.Compose(rnrsim.ScaleTest, []multicore.JobSpec{
		{Workload: "pagerank", Input: "urand"},
		{Workload: "spcg", Input: "bbmat"},
	})
	if err != nil {
		b.Fatal(err)
	}
	run2 := func(b *testing.B, stepped bool) {
		b.ResetTimer()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cfg := rnrsim.TestMachine()
			cfg.Cores = 2
			cfg.Coherence = true
			cfg.LLCBanks = 2
			cfg.CrossCore = true
			cfg.ForceCycleStepped = stepped
			r, err := rnrsim.Simulate(cfg, coApp)
			if err != nil {
				b.Fatal(err)
			}
			cycles += r.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("2core", func(b *testing.B) { run2(b, false) })
	b.Run("2core-stepped", func(b *testing.B) { run2(b, true) })

	// The /2core-parallel pair measures the goroutine-per-core scheduler
	// against the serial event engine on the same machine — the co-run
	// *without* the coherence directory, since coherence hooks private L1
	// demand processing into shared state and (correctly) keeps the run
	// serial. On one CPU the pair is a parity check (span bookkeeping
	// should cost ~nothing); real speedup needs real cores.
	run2p := func(b *testing.B, parallel bool) {
		b.ResetTimer()
		var cycles uint64
		for i := 0; i < b.N; i++ {
			cfg := rnrsim.TestMachine()
			cfg.Cores = 2
			cfg.LLCBanks = 2
			cfg.CrossCore = true
			cfg.CoreParallel = parallel
			r, err := rnrsim.Simulate(cfg, coApp)
			if err != nil {
				b.Fatal(err)
			}
			cycles += r.Cycles
		}
		b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
	}
	b.Run("2core-parallel", func(b *testing.B) { run2p(b, true) })
	b.Run("2core-parallel-serial", func(b *testing.B) { run2p(b, false) })
}

// BenchmarkRnRReplay measures the full RnR pipeline (record + replay);
// the /obs variant adds lifecycle tracking plus the divergence probes,
// the heaviest instrumented configuration.
func BenchmarkRnRReplay(b *testing.B) {
	app, err := rnrsim.BuildWorkload("pagerank", "urand", rnrsim.ScaleTest)
	if err != nil {
		b.Fatal(err)
	}
	run := func(b *testing.B, obsCfg *obs.Config) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cfg := rnrsim.TestMachine()
			cfg.Prefetcher = rnrsim.RnR
			cfg.Obs = obsCfg
			if _, err := rnrsim.Simulate(cfg, app); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("base", func(b *testing.B) { run(b, nil) })
	b.Run("obs", func(b *testing.B) { run(b, &obs.Config{}) })
}
